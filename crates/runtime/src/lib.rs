//! A thread-per-node actor runtime for the sans-io protocol processes.
//!
//! The discrete-event simulator (`bft-sim`) gives deterministic,
//! adversarially-scheduled executions; this runtime gives the complement:
//! the *same* [`Process`] implementations running on real OS threads with
//! real (nondeterministic) interleavings, demonstrating that the protocol
//! code is genuinely transport-agnostic. The integration tests run every
//! protocol under both and check the same correctness properties.
//!
//! Topology matches the paper's model: a fully connected network of
//! authenticated, reliable, FIFO links — realised as one unbounded
//! crossbeam channel per node, with envelopes stamped by the trusted
//! router (a process cannot forge its sender identity). Optional
//! per-message jitter widens the space of interleavings.
//!
//! # Example
//!
//! ```
//! use bft_runtime::Runtime;
//! use bft_types::{Effect, NodeId, Process};
//! use std::time::Duration;
//!
//! struct Echo { id: NodeId, n: usize, heard: usize }
//!
//! impl Process for Echo {
//!     type Msg = ();
//!     type Output = usize;
//!     fn id(&self) -> NodeId { self.id }
//!     fn on_start(&mut self) -> Vec<Effect<(), usize>> {
//!         vec![Effect::Broadcast { msg: () }]
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: &()) -> Vec<Effect<(), usize>> {
//!         self.heard += 1;
//!         if self.heard == self.n {
//!             vec![Effect::Output(self.heard), Effect::Halt]
//!         } else {
//!             Vec::new()
//!         }
//!     }
//! }
//!
//! let n = 3;
//! let mut rt = Runtime::new(n).timeout(Duration::from_secs(5));
//! for id in NodeId::all(n) {
//!     rt.add_process(Box::new(Echo { id, n, heard: 0 }));
//! }
//! let report = rt.run();
//! assert!(report.all_correct_decided());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bft_obs::{Event as ObsEvent, Obs};
use bft_types::{Effect, Envelope, NodeId, Process};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
// lint: allow(determinism) — the thread runtime IS the wall-clock host; protocol logic stays clock-free
use std::time::{Duration, Instant};

/// A boxed, thread-movable process.
pub type BoxedProcess<M, O> = Box<dyn Process<Msg = M, Output = O> + Send>;

/// Control messages on a node's channel.
enum Ctrl<M> {
    Deliver(Envelope<M>),
    Stop,
}

/// The result of a [`Runtime::run`].
#[derive(Clone, Debug)]
pub struct RuntimeReport<O> {
    /// First output of each node that produced one.
    pub outputs: BTreeMap<NodeId, O>,
    /// The correct (non-faulty) nodes.
    pub correct: Vec<NodeId>,
    /// Whether the run hit the timeout before all correct nodes produced
    /// an output.
    pub timed_out: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Whether a runtime worker thread panicked during the run (shared
    /// state may have been poisoned and ridden through). Always `false`
    /// for this in-process runtime, whose workers only run the installed
    /// processes; the TCP runtime's supervised transport threads set it,
    /// paired with a `poison_detected` obs event, so a hung or
    /// short-delivering run can be triaged instead of silently masked.
    pub poisoned: bool,
}

impl<O: Clone + PartialEq> RuntimeReport<O> {
    /// Whether every correct node produced an output.
    pub fn all_correct_decided(&self) -> bool {
        self.correct.iter().all(|id| self.outputs.contains_key(id))
    }

    /// Whether all correct nodes that produced an output agree.
    pub fn agreement_holds(&self) -> bool {
        let mut first: Option<&O> = None;
        for id in &self.correct {
            if let Some(o) = self.outputs.get(id) {
                match first {
                    None => first = Some(o),
                    Some(f) if f == o => {}
                    Some(_) => return false,
                }
            }
        }
        true
    }

    /// The unanimous output of the correct nodes, if all decided and
    /// agree.
    pub fn unanimous_output(&self) -> Option<O> {
        if !self.all_correct_decided() || !self.agreement_holds() {
            return None;
        }
        self.correct.first().and_then(|id| self.outputs.get(id)).cloned()
    }
}

/// A thread-per-node runtime over crossbeam channels.
///
/// Build it with [`Runtime::new`], install one process per node id, then
/// call [`Runtime::run`], which blocks until every correct node has
/// produced an output (or the timeout fires) and then shuts the actors
/// down.
pub struct Runtime<M, O> {
    n: usize,
    procs: Vec<Option<(BoxedProcess<M, O>, bool)>>,
    timeout: Duration,
    jitter_us: u64,
    obs: Obs,
}

impl<M, O> fmt::Debug for Runtime<M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Runtime(n={}, timeout={:?})", self.n, self.timeout)
    }
}

impl<M, O> Runtime<M, O>
where
    M: Clone + fmt::Debug + Send + Sync + 'static,
    O: Clone + fmt::Debug + PartialEq + Send + 'static,
{
    /// Creates an empty runtime for `n` nodes (default timeout: 30 s, no
    /// jitter).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a runtime needs at least one node");
        Runtime {
            n,
            procs: (0..n).map(|_| None).collect(),
            timeout: Duration::from_secs(30),
            jitter_us: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observer; the runtime emits transport-level events
    /// through it and keeps its clock at microseconds since run start.
    ///
    /// Install clones of the same `Obs` into the processes themselves for
    /// protocol-level events. Sinks are locked per event across actor
    /// threads, so event order is a valid interleaving, not a global
    /// total order of the underlying actions.
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the run timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Adds up to `max_us` microseconds of pseudo-random sleep before each
    /// message is processed, to widen the interleaving space.
    pub fn jitter_us(mut self, max_us: u64) -> Self {
        self.jitter_us = max_us;
        self
    }

    /// Installs a correct process.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn add_process(&mut self, proc_: BoxedProcess<M, O>) {
        self.install(proc_, false);
    }

    /// Installs a Byzantine (faulty) process, excluded from the completion
    /// condition and correctness checks.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn add_faulty_process(&mut self, proc_: BoxedProcess<M, O>) {
        self.install(proc_, true);
    }

    fn install(&mut self, proc_: BoxedProcess<M, O>, faulty: bool) {
        let idx = proc_.id().index();
        assert!(idx < self.n, "process id {idx} out of range");
        assert!(self.procs[idx].is_none(), "slot {idx} already occupied");
        self.procs[idx] = Some((proc_, faulty));
    }

    /// Runs the actors to completion.
    ///
    /// # Panics
    ///
    /// Panics if some node slot was never populated.
    pub fn run(mut self) -> RuntimeReport<O> {
        for (i, p) in self.procs.iter().enumerate() {
            assert!(p.is_some(), "node slot {i} was never populated");
        }
        // lint: allow(determinism) — wall-clock timeout for real threads; replay runs use bft-sim, not this host
        let started = Instant::now();
        let n = self.n;
        let jitter_us = self.jitter_us;

        let mut senders: Vec<Sender<Ctrl<M>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Ctrl<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let outputs: Arc<Mutex<BTreeMap<NodeId, O>>> = Arc::new(Mutex::new(BTreeMap::new()));

        let correct: Vec<NodeId> = self
            .procs
            .iter()
            .enumerate()
            // lint: allow(panic) — every slot was asserted populated at the top of run()
            .filter(|(_, p)| !p.as_ref().expect("slot populated").1)
            .map(|(i, _)| NodeId::new(i))
            .collect();

        let mut timed_out = false;
        let obs = self.obs.clone();
        std::thread::scope(|scope| {
            for (idx, slot) in self.procs.iter_mut().enumerate() {
                // lint: allow(panic) — every slot was asserted populated at the top of run()
                let (mut proc_, _) = slot.take().expect("slot populated");
                let rx = receivers[idx].clone();
                let senders = Arc::clone(&senders);
                let outputs = Arc::clone(&outputs);
                let obs = obs.clone();
                scope.spawn(move || {
                    actor_loop(&mut proc_, rx, &senders, &outputs, jitter_us, &obs);
                });
            }

            // Completion monitor: poll until all correct nodes decided or
            // the timeout fires, then stop all actors. Each poll also
            // advances the observer clock (µs since run start).
            loop {
                obs.set_now(started.elapsed().as_micros() as u64);
                {
                    let outs = outputs.lock();
                    if correct.iter().all(|id| outs.contains_key(id)) {
                        break;
                    }
                }
                if started.elapsed() > self.timeout {
                    timed_out = true;
                    break;
                }
                // lint: allow(determinism) — supervisor poll interval; does not order protocol messages
                std::thread::sleep(Duration::from_millis(1));
            }
            for tx in senders.iter() {
                let _ = tx.send(Ctrl::Stop);
            }
        });

        let outputs = Arc::try_unwrap(outputs)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        RuntimeReport { outputs, correct, timed_out, elapsed: started.elapsed(), poisoned: false }
    }
}

/// The body of one actor thread.
fn actor_loop<M, O>(
    proc_: &mut BoxedProcess<M, O>,
    rx: Receiver<Ctrl<M>>,
    senders: &[Sender<Ctrl<M>>],
    outputs: &Mutex<BTreeMap<NodeId, O>>,
    jitter_us: u64,
    obs: &Obs,
) where
    M: Clone + fmt::Debug + Send + Sync + 'static,
    O: Clone + fmt::Debug + PartialEq + Send + 'static,
{
    let me = proc_.id();
    // Cheap per-node xorshift for jitter; determinism is not a goal here.
    let mut rng_state = 0x9e37_79b9_7f4a_7c15u64 ^ (me.index() as u64 + 1);
    let mut jitter = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        if jitter_us > 0 {
            // lint: allow(determinism) — deliberate scheduling jitter; this host explores real interleavings
            std::thread::sleep(Duration::from_micros(rng_state % jitter_us));
        }
    };

    let mut halted = false;
    let effects = proc_.on_start();
    apply(me, effects, senders, outputs, &mut halted, obs);

    // One loop until Stop: while the protocol is live, deliveries are
    // processed; after it halts, deliveries are drained and ignored. The
    // runtime sends exactly one Stop per actor, so the loop must consume
    // everything else without a second waiting point. (Not a `while let`:
    // Stop and closed-channel both exit via the same arm.)
    #[allow(clippy::while_let_loop)]
    loop {
        match rx.recv() {
            Ok(Ctrl::Deliver(env)) => {
                if halted || proc_.is_halted() {
                    obs.emit(me, || ObsEvent::MessageDropped { from: env.from });
                    continue;
                }
                jitter();
                obs.emit(me, || ObsEvent::MessageDelivered { from: env.from, kind: "msg" });
                let effects = proc_.on_message(env.from, &env.msg);
                apply(me, effects, senders, outputs, &mut halted, obs);
            }
            Ok(Ctrl::Stop) | Err(_) => break,
        }
    }
}

fn apply<M, O>(
    me: NodeId,
    effects: Vec<Effect<M, O>>,
    senders: &[Sender<Ctrl<M>>],
    outputs: &Mutex<BTreeMap<NodeId, O>>,
    halted: &mut bool,
    obs: &Obs,
) where
    M: Clone,
{
    for effect in effects {
        match effect {
            Effect::Send { to, msg } => {
                if let Some(tx) = senders.get(to.index()) {
                    // The runtime has no classifier; sends are unkinded
                    // and unsized on the event stream.
                    obs.emit(me, || ObsEvent::MessageSent { to, kind: "msg", bytes: 0 });
                    let _ = tx.send(Ctrl::Deliver(Envelope::new(me, to, msg)));
                }
            }
            Effect::Broadcast { msg } => {
                // One allocation for the whole fan-out: every recipient's
                // envelope shares the same payload.
                let shared = Arc::new(msg);
                for (i, tx) in senders.iter().enumerate() {
                    let to = NodeId::new(i);
                    obs.emit(me, || ObsEvent::MessageSent { to, kind: "msg", bytes: 0 });
                    let _ = tx.send(Ctrl::Deliver(Envelope::shared(me, to, Arc::clone(&shared))));
                }
            }
            Effect::Output(o) => {
                outputs.lock().entry(me).or_insert(o);
            }
            Effect::Halt => {
                if !*halted {
                    *halted = true;
                    obs.emit(me, || ObsEvent::NodeHalted);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        id: NodeId,
        n: usize,
        heard: usize,
    }

    impl Process for Echo {
        type Msg = ();
        type Output = usize;
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_start(&mut self) -> Vec<Effect<(), usize>> {
            vec![Effect::Broadcast { msg: () }]
        }
        fn on_message(&mut self, _from: NodeId, _msg: &()) -> Vec<Effect<(), usize>> {
            self.heard += 1;
            if self.heard == self.n {
                vec![Effect::Output(self.heard), Effect::Halt]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn all_to_all_echo_completes() {
        let n = 4;
        let mut rt = Runtime::new(n).timeout(Duration::from_secs(10));
        for id in NodeId::all(n) {
            rt.add_process(Box::new(Echo { id, n, heard: 0 }));
        }
        let report = rt.run();
        assert!(!report.timed_out);
        assert!(report.all_correct_decided());
        assert_eq!(report.unanimous_output(), Some(n));
    }

    #[test]
    fn timeout_fires_for_stalled_protocols() {
        struct Stuck {
            id: NodeId,
        }
        impl Process for Stuck {
            type Msg = ();
            type Output = usize;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<(), usize>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: NodeId, _m: &()) -> Vec<Effect<(), usize>> {
                Vec::new()
            }
        }
        let mut rt = Runtime::new(2).timeout(Duration::from_millis(50));
        rt.add_process(Box::new(Stuck { id: NodeId::new(0) }));
        rt.add_process(Box::new(Stuck { id: NodeId::new(1) }));
        let report = rt.run();
        assert!(report.timed_out);
        assert!(!report.all_correct_decided());
    }

    #[test]
    fn faulty_nodes_do_not_gate_completion() {
        struct Silent {
            id: NodeId,
        }
        impl Process for Silent {
            type Msg = ();
            type Output = usize;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<(), usize>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: NodeId, _m: &()) -> Vec<Effect<(), usize>> {
                Vec::new()
            }
        }
        let n = 3;
        let mut rt = Runtime::new(n).timeout(Duration::from_secs(10));
        // The echoers expect n−1 = 2 messages (the silent node never
        // broadcasts, but loopback plus one peer suffices).
        for id in NodeId::all(n) {
            if id.index() == 2 {
                rt.add_faulty_process(Box::new(Silent { id }));
            } else {
                rt.add_process(Box::new(Echo { id, n: 2, heard: 0 }));
            }
        }
        let report = rt.run();
        assert!(!report.timed_out);
        assert!(report.all_correct_decided());
        assert_eq!(report.correct.len(), 2);
    }

    #[test]
    fn jitter_does_not_break_completion() {
        let n = 3;
        let mut rt = Runtime::new(n).timeout(Duration::from_secs(10)).jitter_us(200);
        for id in NodeId::all(n) {
            rt.add_process(Box::new(Echo { id, n, heard: 0 }));
        }
        let report = rt.run();
        assert!(report.all_correct_decided());
    }

    #[test]
    #[should_panic(expected = "never populated")]
    fn run_requires_all_slots() {
        let rt: Runtime<(), usize> = Runtime::new(2);
        let _ = rt.run();
    }
}
