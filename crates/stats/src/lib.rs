//! Statistics and reporting utilities for the experiment harness.
//!
//! The benchmark binaries aggregate many simulation runs into summary
//! rows. This crate provides the three pieces they need:
//!
//! * [`Samples`] — an exact sample collector with mean / percentile /
//!   min / max queries.
//! * [`Histogram`] — integer-valued distribution (e.g. rounds-to-decide)
//!   with tail queries and sparkline rendering for "figures" printed to a
//!   terminal.
//! * [`Table`] — fixed-width table and CSV rendering, so every experiment
//!   can print the same rows the paper reports and also emit
//!   machine-readable output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod samples;
mod table;

pub use histogram::Histogram;
pub use samples::Samples;
pub use table::{fmt_f64, Table};
