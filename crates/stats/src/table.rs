//! Fixed-width table and CSV rendering.

use std::fmt;

/// A simple table: a header row plus data rows, rendered either as an
/// aligned fixed-width text table (for terminal output mirroring the
/// paper's tables) or as CSV (for downstream plotting).
///
/// # Example
///
/// ```
/// use bft_stats::Table;
///
/// let mut t = Table::new(vec!["n", "f", "mean rounds"]);
/// t.row(vec!["4".into(), "1".into(), "2.3".into()]);
/// t.row(vec!["7".into(), "2".into(), "2.9".into()]);
/// let text = t.render();
/// assert!(text.contains("mean rounds"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("n,f,mean rounds\n"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width must match header width");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned fixed-width text table with a separator under
    /// the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            line.push('\n');
            line
        };
        let mut out = render_row(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }

    /// Renders the table as CSV (comma-separated; cells containing commas
    /// or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a float with three significant decimals — the house style of
/// the experiment tables.
pub fn fmt_f64(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "count"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "100".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines must be equal width (right-aligned columns).
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_header() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_f64_three_decimals() {
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(2.0), "2.000");
    }
}
