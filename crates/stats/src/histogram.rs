//! Integer-valued distributions.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram over non-negative integer observations, e.g.
/// rounds-to-decide across many seeds.
///
/// # Example
///
/// ```
/// use bft_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for r in [1u64, 1, 2, 2, 2, 5] {
///     h.add(r);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.count_at(2), 3);
/// assert_eq!(h.max(), Some(5));
/// // Tail: P[X > 2] = 1/6.
/// assert!((h.tail_probability(2) - 1.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations equal to `value`.
    pub fn count_at(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean of the observations; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self.counts.iter().map(|(&v, &c)| v as u128 * c as u128).sum();
        sum as f64 / self.total as f64
    }

    /// Empirical `P[X > value]`.
    pub fn tail_probability(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let above: u64 = self.counts.range(value + 1..).map(|(_, &c)| c).sum();
        above as f64 / self.total as f64
    }

    /// Adds every observation from `other` (pointwise count addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (&value, &count) in &other.counts {
            *self.counts.entry(value).or_insert(0) += count;
        }
        self.total += other.total;
    }

    /// Iterates over `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Renders an ASCII bar chart, one line per observed value — the
    /// "figure" output of the experiment harness.
    ///
    /// `width` is the length of the longest bar in characters.
    pub fn render(&self, width: usize) -> String {
        let Some(max_count) = self.counts.values().max().copied() else {
            return String::from("(empty histogram)\n");
        };
        let mut out = String::new();
        for (&value, &count) in &self.counts {
            let bar_len = ((count as f64 / max_count as f64) * width as f64).round() as usize;
            let bar: String = std::iter::repeat_n('#', bar_len.max(1)).collect();
            out.push_str(&format!("{value:>6} | {bar} {count}\n"));
        }
        out
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.tail_probability(0), 0.0);
        assert!(h.render(10).contains("empty"));
    }

    #[test]
    fn counting_and_mean() {
        let h: Histogram = [1u64, 2, 2, 3].into_iter().collect();
        assert_eq!(h.count(), 4);
        assert_eq!(h.count_at(2), 2);
        assert_eq!(h.count_at(9), 0);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(3));
    }

    #[test]
    fn tail_probabilities_decrease() {
        let h: Histogram = (1u64..=100).collect();
        let mut last = 1.0;
        for v in 0..100 {
            let t = h.tail_probability(v);
            assert!(t <= last);
            last = t;
        }
        assert_eq!(h.tail_probability(100), 0.0);
        assert_eq!(h.tail_probability(0), 1.0);
    }

    #[test]
    fn merge_adds_counts_pointwise() {
        let mut a: Histogram = [1u64, 2, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.count_at(2), 3);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(1, 1), (2, 3), (3, 1)]);
    }

    #[test]
    fn iter_is_sorted() {
        let h: Histogram = [5u64, 1, 3, 1].into_iter().collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 2), (3, 1), (5, 1)]);
    }

    #[test]
    fn render_scales_bars() {
        let h: Histogram = [1u64, 1, 1, 1, 2].into_iter().collect();
        let out = h.render(8);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() > lines[1].matches('#').count());
    }
}
