//! Exact sample statistics.

use std::fmt;

/// A collector of `f64` samples with exact summary statistics.
///
/// Designed for experiment-scale sample counts (thousands), so it simply
/// stores the samples and sorts on demand.
///
/// # Example
///
/// ```
/// use bft_stats::Samples;
///
/// let mut s = Samples::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.percentile(50.0), Some(2.0)); // nearest-rank median
/// ```
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — summary statistics over NaN are
    /// meaningless and indicate a harness bug.
    pub fn add(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot add NaN sample");
        self.values.push(value);
        self.sorted = false;
    }

    /// Adds every sample from an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation; 0 for fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// The `p`-th percentile (nearest-rank method), `0 ≤ p ≤ 100`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.values.len() as f64).ceil() as usize;
        Some(self.values[rank.saturating_sub(1).min(self.values.len() - 1)])
    }

    /// The collected samples, in insertion or sorted order (unspecified).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Appends every sample from `other`, preserving `other`'s current
    /// order. Merging per-shard collectors in a fixed shard order yields
    /// the same multiset (and the same summary statistics) as collecting
    /// everything into one instance.
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for Samples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.len(),
            self.mean(),
            self.stddev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_behaviour() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(50.0), None);
    }

    #[test]
    fn known_statistics() {
        let mut s: Samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.stddev() - 2.138).abs() < 0.01);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.percentile(0.0), Some(2.0));
        assert_eq!(s.percentile(100.0), Some(9.0));
        assert_eq!(s.percentile(50.0), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Samples::new().add(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "percentile must be")]
    fn rejects_out_of_range_percentile() {
        let mut s: Samples = [1.0].into_iter().collect();
        let _ = s.percentile(101.0);
    }

    #[test]
    fn merge_matches_single_collector() {
        let mut a: Samples = [3.0, 1.0].into_iter().collect();
        let b: Samples = [2.0, 5.0].into_iter().collect();
        a.merge(&b);
        let mut whole: Samples = [3.0, 1.0, 2.0, 5.0].into_iter().collect();
        assert_eq!(a.len(), 4);
        assert_eq!(a.mean(), whole.mean());
        assert_eq!(a.percentile(50.0), whole.percentile(50.0));
        assert_eq!(a.values(), whole.values());
    }

    #[test]
    fn display_is_informative() {
        let s: Samples = [1.0, 3.0].into_iter().collect();
        let d = s.to_string();
        assert!(d.contains("n=2"));
        assert!(d.contains("mean=2.00"));
    }

    proptest! {
        #[test]
        fn percentiles_are_monotone_and_bounded(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s: Samples = values.iter().copied().collect();
            let p25 = s.percentile(25.0).unwrap();
            let p50 = s.percentile(50.0).unwrap();
            let p99 = s.percentile(99.0).unwrap();
            prop_assert!(p25 <= p50 && p50 <= p99);
            prop_assert!(s.min().unwrap() <= p25);
            prop_assert!(p99 <= s.max().unwrap());
        }

        #[test]
        fn mean_is_within_min_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: Samples = values.iter().copied().collect();
            let mean = s.mean();
            prop_assert!(s.min().unwrap() - 1e-9 <= mean && mean <= s.max().unwrap() + 1e-9);
        }
    }
}
