//! The result of a simulation run.

use crate::{Metrics, SimTime, TraceEntry};
use bft_types::NodeId;
use std::collections::BTreeMap;

/// Why the simulation stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The stop policy was satisfied (all correct nodes produced an output /
    /// halted, depending on configuration).
    Completed,
    /// The event queue drained before the stop policy was satisfied — the
    /// protocol is stuck (or the run genuinely finished with nothing left
    /// to do).
    QueueDrained,
    /// The configured budget (max delivered messages or max simulated time)
    /// was exhausted. For randomized protocols this usually means the
    /// adversary got astronomically lucky — or the protocol is not live.
    BudgetExhausted,
}

/// Everything observable about a finished run.
#[derive(Clone, Debug)]
pub struct Report<O> {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// First output of each node that produced one (correct and faulty).
    pub outputs: BTreeMap<NodeId, O>,
    /// Simulated time of each node's first output.
    pub output_times: BTreeMap<NodeId, SimTime>,
    /// Protocol round of each node at its first output.
    pub output_rounds: BTreeMap<NodeId, u64>,
    /// The highest protocol round any correct node reached.
    pub max_round: u64,
    /// Message/byte/event counters.
    pub metrics: Metrics,
    /// The correct (non-faulty) nodes of the run.
    pub correct: Vec<NodeId>,
    /// Execution trace, if capture was enabled.
    pub trace: Vec<TraceEntry>,
}

impl<O: Clone + PartialEq> Report<O> {
    /// Whether every correct node produced an output.
    pub fn all_correct_decided(&self) -> bool {
        self.correct.iter().all(|id| self.outputs.contains_key(id))
    }

    /// Whether all correct nodes that produced an output agree on it.
    ///
    /// Note this is *vacuously true* if at most one correct node decided;
    /// combine with [`Report::all_correct_decided`] for a full correctness
    /// check.
    pub fn agreement_holds(&self) -> bool {
        let mut first: Option<&O> = None;
        for id in &self.correct {
            if let Some(o) = self.outputs.get(id) {
                match first {
                    None => first = Some(o),
                    Some(f) if f == o => {}
                    Some(_) => return false,
                }
            }
        }
        true
    }

    /// The output of a specific node, if it produced one.
    pub fn output_of(&self, id: NodeId) -> Option<O> {
        self.outputs.get(&id).cloned()
    }

    /// The unanimous output of the correct nodes.
    ///
    /// Returns `None` unless **all** correct nodes decided and they agree.
    pub fn unanimous_output(&self) -> Option<O> {
        if !self.all_correct_decided() || !self.agreement_holds() {
            return None;
        }
        self.correct.first().and_then(|id| self.outputs.get(id)).cloned()
    }

    /// The latest first-output time among correct nodes (decision latency),
    /// or `None` if some correct node never decided.
    pub fn decision_latency(&self) -> Option<SimTime> {
        self.correct
            .iter()
            .map(|id| self.output_times.get(id).copied())
            .collect::<Option<Vec<_>>>()
            .map(|ts| ts.into_iter().max().unwrap_or(SimTime::ZERO))
    }

    /// The largest decision round among correct nodes, or `None` if some
    /// correct node never decided.
    pub fn decision_round(&self) -> Option<u64> {
        self.correct
            .iter()
            .map(|id| self.output_rounds.get(id).copied())
            .collect::<Option<Vec<_>>>()
            .map(|rs| rs.into_iter().max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(correct: &[usize], outputs: &[(usize, u8)]) -> Report<u8> {
        Report {
            stop: StopReason::Completed,
            end_time: SimTime::from_ticks(10),
            outputs: outputs.iter().map(|&(i, v)| (NodeId::new(i), v)).collect(),
            output_times: outputs
                .iter()
                .enumerate()
                .map(|(k, &(i, _))| (NodeId::new(i), SimTime::from_ticks(k as u64 + 1)))
                .collect(),
            output_rounds: outputs.iter().map(|&(i, _)| (NodeId::new(i), 2)).collect(),
            max_round: 2,
            metrics: Metrics::default(),
            correct: correct.iter().map(|&i| NodeId::new(i)).collect(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn agreement_and_completion() {
        let r = report(&[0, 1, 2], &[(0, 1), (1, 1), (2, 1), (3, 0)]);
        assert!(r.all_correct_decided());
        assert!(r.agreement_holds()); // faulty node 3 disagreeing is fine
        assert_eq!(r.unanimous_output(), Some(1));
        assert_eq!(r.decision_round(), Some(2));
        assert_eq!(r.decision_latency(), Some(SimTime::from_ticks(3)));
    }

    #[test]
    fn detects_disagreement() {
        let r = report(&[0, 1], &[(0, 1), (1, 0)]);
        assert!(!r.agreement_holds());
        assert_eq!(r.unanimous_output(), None);
    }

    #[test]
    fn detects_missing_decision() {
        let r = report(&[0, 1, 2], &[(0, 1), (1, 1)]);
        assert!(!r.all_correct_decided());
        assert!(r.agreement_holds()); // vacuous over deciders
        assert_eq!(r.unanimous_output(), None);
        assert_eq!(r.decision_latency(), None);
        assert_eq!(r.decision_round(), None);
    }
}
