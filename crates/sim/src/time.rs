//! Simulated time.

use std::fmt;
use std::ops::Add;

/// A point in simulated time, measured in abstract ticks.
///
/// Ticks have no physical meaning: the asynchronous model only constrains
/// *relative order* of deliveries. Time exists so that schedulers can
/// express delays and so the harness can report "simulated latency".
///
/// # Example
///
/// ```
/// use bft_sim::SimTime;
/// let t = SimTime::ZERO + 5;
/// assert_eq!(t.ticks(), 5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, ticks: u64) -> SimTime {
        SimTime(self.0.saturating_add(ticks))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_ticks(3);
        let b = a + 4;
        assert_eq!(b.ticks(), 7);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn addition_saturates() {
        let t = SimTime::from_ticks(u64::MAX) + 10;
        assert_eq!(t.ticks(), u64::MAX);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
