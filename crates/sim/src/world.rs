//! The simulation driver.

use crate::event::{Event, EventKind};
use crate::metrics::MsgClass;
use crate::{Metrics, Report, Scheduler, SimTime, StopReason, TraceEntry};
use bft_obs::{Event as ObsEvent, Obs};
use bft_types::{Effect, Envelope, NodeId, Process};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// How often (in processed events) the world samples its pending-delivery
/// queue depth into the observer stream.
const QUEUE_DEPTH_SAMPLE_EVERY: u64 = 256;

/// When the simulation considers itself done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopPolicy {
    /// Stop once every correct node has produced an output (its decision).
    /// This is the default: experiments measure time-to-decision.
    #[default]
    AllCorrectOutput,
    /// Stop once every correct node has halted. Use this to exercise the
    /// termination gadget (correct nodes keep participating for a bounded
    /// number of rounds after deciding, then halt).
    AllCorrectHalted,
    /// Run until the event queue drains or a budget is hit.
    QueueDrain,
}

/// Configuration of a [`World`].
#[derive(Clone, Debug)]
pub struct WorldConfig {
    n: usize,
    stop_policy: StopPolicy,
    max_delivered: u64,
    max_time: SimTime,
    capture_trace: bool,
    trace_capacity: usize,
}

/// Default bound on the captured trace: enough for a whole scripted run,
/// small enough that week-long soak runs stay at constant memory.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl WorldConfig {
    /// Creates a configuration for `n` nodes with default budgets
    /// (10 million deliveries, unbounded simulated time, no trace).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a world needs at least one node");
        WorldConfig {
            n,
            stop_policy: StopPolicy::default(),
            max_delivered: 10_000_000,
            max_time: SimTime::from_ticks(u64::MAX),
            capture_trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Sets the stop policy.
    pub fn stop_policy(mut self, policy: StopPolicy) -> Self {
        self.stop_policy = policy;
        self
    }

    /// Caps the number of delivered messages; the run stops with
    /// [`StopReason::BudgetExhausted`] when reached.
    pub fn max_delivered(mut self, max: u64) -> Self {
        self.max_delivered = max;
        self
    }

    /// Caps simulated time; events scheduled beyond the cap stop the run.
    pub fn max_time(mut self, max: SimTime) -> Self {
        self.max_time = max;
        self
    }

    /// Enables capture of an execution trace (allocates; debugging aid).
    /// The trace is a ring buffer holding the most recent
    /// [`DEFAULT_TRACE_CAPACITY`] entries unless overridden with
    /// [`WorldConfig::trace_capacity`].
    pub fn capture_trace(mut self, on: bool) -> Self {
        self.capture_trace = on;
        self
    }

    /// Bounds the captured trace to the most recent `capacity` entries.
    /// Long runs would otherwise grow the trace without bound, distorting
    /// memory measurements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — use
    /// [`WorldConfig::capture_trace`]`(false)` to disable tracing.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        self.trace_capacity = capacity;
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// A deterministic discrete-event world of `n` processes connected by
/// reliable FIFO links whose delays are chosen by a [`Scheduler`].
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct World<M, O, S> {
    config: WorldConfig,
    scheduler: S,
    procs: Vec<Option<Box<dyn Process<Msg = M, Output = O>>>>,
    faulty: Vec<bool>,
    halted: Vec<bool>,
    queue: BinaryHeap<Event<M>>,
    seq: u64,
    /// Last scheduled delivery time per directed link, to enforce FIFO.
    link_clock: Vec<SimTime>,
    classifier: Option<fn(&M) -> MsgClass>,
    obs: Obs,
    metrics: Metrics,
    outputs: BTreeMap<NodeId, O>,
    output_times: BTreeMap<NodeId, SimTime>,
    output_rounds: BTreeMap<NodeId, u64>,
    /// Replacement factories for scheduled restarts, consumed when the
    /// matching `Restart` event fires.
    restarts: BTreeMap<NodeId, ProcessFactory<M, O>>,
    trace: VecDeque<TraceEntry>,
    now: SimTime,
}

/// Builds a replacement process for a scheduled restart.
pub type ProcessFactory<M, O> = Box<dyn FnOnce() -> Box<dyn Process<Msg = M, Output = O>>>;

impl<M, O, S> World<M, O, S>
where
    M: Clone + fmt::Debug,
    O: Clone + fmt::Debug + PartialEq,
    S: Scheduler<M>,
{
    /// Creates an empty world; populate it with [`World::add_process`] /
    /// [`World::add_faulty_process`] before calling [`World::run`].
    pub fn new(config: WorldConfig, scheduler: S) -> Self {
        let n = config.n;
        World {
            config,
            scheduler,
            procs: (0..n).map(|_| None).collect(),
            faulty: vec![false; n],
            halted: vec![false; n],
            queue: BinaryHeap::new(),
            seq: 0,
            link_clock: vec![SimTime::ZERO; n * n],
            classifier: None,
            obs: Obs::disabled(),
            metrics: Metrics::default(),
            outputs: BTreeMap::new(),
            output_times: BTreeMap::new(),
            output_rounds: BTreeMap::new(),
            restarts: BTreeMap::new(),
            trace: VecDeque::new(),
            now: SimTime::ZERO,
        }
    }

    /// Installs a correct process. Its slot is determined by
    /// [`Process::id`].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is already occupied.
    pub fn add_process(&mut self, proc_: Box<dyn Process<Msg = M, Output = O>>) {
        self.install(proc_, false);
    }

    /// Installs a Byzantine (faulty) process. Faulty nodes are excluded
    /// from stop policies and correctness checks — they may do anything.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is already occupied.
    pub fn add_faulty_process(&mut self, proc_: Box<dyn Process<Msg = M, Output = O>>) {
        self.install(proc_, true);
    }

    fn install(&mut self, proc_: Box<dyn Process<Msg = M, Output = O>>, faulty: bool) {
        let idx = proc_.id().index();
        assert!(idx < self.config.n, "process id {idx} out of range");
        assert!(self.procs[idx].is_none(), "slot {idx} already occupied");
        self.faulty[idx] = faulty;
        self.procs[idx] = Some(proc_);
    }

    /// Schedules a crash: at time `at` the node is marked halted, so
    /// every later delivery to it is dropped — exactly as if the host
    /// died. Pair with [`World::schedule_restart`] to model a node that
    /// comes back with empty state and must catch up from its peers.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
        assert!(node.index() < self.config.n, "node {node} out of range");
        self.push_event(at, EventKind::Crash(node));
    }

    /// Schedules a restart: at time `at` the node's slot is replaced by
    /// a fresh process from `factory`, its halted flag and any recorded
    /// output are cleared, and the replacement's `on_start` runs. The
    /// replacement starts with whatever state the factory builds —
    /// typically empty, forcing recovery through the protocol itself.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, or (at fire time) if the
    /// factory builds a process with a different id.
    pub fn schedule_restart(&mut self, node: NodeId, at: SimTime, factory: ProcessFactory<M, O>) {
        assert!(node.index() < self.config.n, "node {node} out of range");
        self.restarts.insert(node, factory);
        self.push_event(at, EventKind::Restart(node));
    }

    /// Installs a message classifier used for per-kind and byte
    /// accounting in [`Metrics`].
    pub fn set_classifier(&mut self, classifier: fn(&M) -> MsgClass) {
        self.classifier = Some(classifier);
    }

    /// Installs an observer; the world emits transport-level events
    /// (sends, deliveries, drops, halts, queue-depth samples) through it
    /// and keeps its clock synchronized with simulated time.
    ///
    /// The processes' own handles (clones of the same `Obs`) emit the
    /// protocol-level events; the world only covers the transport layer.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The ids of the correct (non-faulty) nodes.
    pub fn correct_nodes(&self) -> Vec<NodeId> {
        (0..self.config.n).filter(|&i| !self.faulty[i]).map(NodeId::new).collect()
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        self.seq += 1;
        self.queue.push(Event { time, seq: self.seq, kind });
    }

    fn classify(&self, msg: &M) -> Option<MsgClass> {
        self.classifier.map(|c| c(msg))
    }

    /// Appends a trace entry, evicting the oldest once the ring is full.
    fn record_trace(&mut self, at: NodeId, what: String) {
        if self.trace.len() >= self.config.trace_capacity {
            self.trace.pop_front();
        }
        self.trace.push_back(TraceEntry { time: self.now, at, what });
    }

    /// Applies the effects a process produced at the current time.
    fn apply_effects(&mut self, from: NodeId, effects: Vec<Effect<M, O>>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.enqueue_send(from, to, Arc::new(msg)),
                Effect::Broadcast { msg } => {
                    // Zero-copy fan-out: one allocation shared by every
                    // recipient's envelope.
                    let shared = Arc::new(msg);
                    for to in NodeId::all(self.config.n) {
                        self.enqueue_send(from, to, Arc::clone(&shared));
                    }
                }
                Effect::Output(o) => {
                    if let std::collections::btree_map::Entry::Vacant(e) = self.outputs.entry(from)
                    {
                        e.insert(o);
                        self.output_times.insert(from, self.now);
                        let round =
                            self.procs[from.index()].as_ref().map(|p| p.round()).unwrap_or(0);
                        self.output_rounds.insert(from, round);
                        if self.config.capture_trace {
                            self.record_trace(from, "output".into());
                        }
                    }
                }
                Effect::Halt => self.mark_halted(from),
            }
        }
    }

    /// Marks a node halted, emitting `NodeHalted` on the transition.
    fn mark_halted(&mut self, id: NodeId) {
        if !self.halted[id.index()] {
            self.halted[id.index()] = true;
            self.obs.emit(id, || ObsEvent::NodeHalted);
        }
    }

    fn enqueue_send(&mut self, from: NodeId, to: NodeId, msg: Arc<M>) {
        assert!(to.index() < self.config.n, "destination {to} out of range");
        let class = self.classify(&msg);
        self.metrics.record_send(from, class);
        if self.obs.enabled() {
            let (kind, bytes) = class.map_or(("msg", 0), |c| (c.kind, c.bytes as u64));
            self.obs.emit(from, || ObsEvent::MessageSent { to, kind, bytes });
        }
        let envelope = Envelope::shared(from, to, msg);
        let delay = self.scheduler.delay(&envelope, self.now);
        let link = from.index() * self.config.n + to.index();
        // FIFO links: delivery times per directed link are non-decreasing,
        // and ties are broken by enqueue order (the `seq` counter), which
        // equals send order.
        let at = (self.now + delay).max(self.link_clock[link]);
        self.link_clock[link] = at;
        self.push_event(at, EventKind::Deliver(envelope));
    }

    fn stop_satisfied(&self) -> bool {
        match self.config.stop_policy {
            StopPolicy::AllCorrectOutput => (0..self.config.n)
                .filter(|&i| !self.faulty[i])
                .all(|i| self.outputs.contains_key(&NodeId::new(i))),
            StopPolicy::AllCorrectHalted => {
                (0..self.config.n).filter(|&i| !self.faulty[i]).all(|i| self.halted[i])
            }
            StopPolicy::QueueDrain => false,
        }
    }

    /// Runs the simulation to completion and returns the [`Report`].
    ///
    /// # Panics
    ///
    /// Panics if some node slot was never populated.
    pub fn run(mut self) -> Report<O> {
        for (i, p) in self.procs.iter().enumerate() {
            assert!(p.is_some(), "node slot {i} was never populated");
        }
        // Schedule every process's start at t = 0; the scheduler still
        // controls all subsequent interleaving.
        for id in NodeId::all(self.config.n) {
            self.push_event(SimTime::ZERO, EventKind::Start(id));
        }

        let stop = loop {
            if self.stop_satisfied() {
                break StopReason::Completed;
            }
            // Peek before popping: an event that would bust the budget
            // stays in the queue and counts as in-flight, keeping the
            // conservation identity `sent = delivered + dropped +
            // in_flight_at_stop` exact.
            let Some(next) = self.queue.peek() else {
                break if self.stop_satisfied() {
                    StopReason::Completed
                } else {
                    StopReason::QueueDrained
                };
            };
            if next.time > self.config.max_time
                || self.metrics.delivered >= self.config.max_delivered
            {
                break StopReason::BudgetExhausted;
            }
            // lint: allow(panic) — the loop's `let ... else` above proved the queue non-empty
            let event = self.queue.pop().expect("peeked above");
            self.now = event.time;
            self.obs.set_now(self.now.ticks());
            self.metrics.events += 1;
            if self.obs.enabled() && self.metrics.events.is_multiple_of(QUEUE_DEPTH_SAMPLE_EVERY) {
                let depth = self.queue.len() as u64;
                // Host-level sample; the node field is 0 by convention.
                self.obs.emit(NodeId::new(0), || ObsEvent::QueueDepth { depth });
            }
            match event.kind {
                EventKind::Start(id) => {
                    if self.halted[id.index()] {
                        continue;
                    }
                    if self.config.capture_trace {
                        self.record_trace(id, "start".into());
                    }
                    let effects =
                        // lint: allow(panic) — World::new populates every slot before run() can be called
                        self.procs[id.index()].as_mut().expect("slot populated").on_start();
                    self.apply_effects(id, effects);
                    // lint: allow(panic) — World::new populates every slot before run() can be called
                    if self.procs[id.index()].as_ref().expect("slot populated").is_halted() {
                        self.mark_halted(id);
                    }
                }
                EventKind::Deliver(envelope) => {
                    let to = envelope.to;
                    if self.halted[to.index()] {
                        self.metrics.record_drop();
                        self.obs.emit(to, || ObsEvent::MessageDropped { from: envelope.from });
                        continue;
                    }
                    self.metrics.record_delivery();
                    if self.obs.enabled() {
                        let kind = self.classify(&envelope.msg).map_or("msg", |c| c.kind);
                        let from = envelope.from;
                        self.obs.emit(to, || ObsEvent::MessageDelivered { from, kind });
                    }
                    if self.config.capture_trace {
                        let what = format!("deliver {}: {:?}", envelope.from, envelope.msg);
                        self.record_trace(to, what);
                    }
                    let effects = self.procs[to.index()]
                        .as_mut()
                        // lint: allow(panic) — World::new populates every slot before run() can be called
                        .expect("slot populated")
                        .on_message(envelope.from, &envelope.msg);
                    self.apply_effects(to, effects);
                    // lint: allow(panic) — World::new populates every slot before run() can be called
                    if self.procs[to.index()].as_ref().expect("slot populated").is_halted() {
                        self.mark_halted(to);
                    }
                }
                EventKind::Crash(id) => {
                    if self.config.capture_trace {
                        self.record_trace(id, "crash".into());
                    }
                    // Halted nodes drop all deliveries — the same
                    // observable behaviour as a dead host.
                    self.mark_halted(id);
                }
                EventKind::Restart(id) => {
                    let Some(factory) = self.restarts.remove(&id) else {
                        continue;
                    };
                    let replacement = factory();
                    assert_eq!(replacement.id(), id, "restart factory changed the node id");
                    self.procs[id.index()] = Some(replacement);
                    self.halted[id.index()] = false;
                    // Any pre-crash output no longer reflects this
                    // node's state; the replacement must re-earn it.
                    self.outputs.remove(&id);
                    self.output_times.remove(&id);
                    self.output_rounds.remove(&id);
                    if self.config.capture_trace {
                        self.record_trace(id, "restart".into());
                    }
                    let effects =
                        // lint: allow(panic) — the slot was just populated with the replacement
                        self.procs[id.index()].as_mut().expect("slot populated").on_start();
                    self.apply_effects(id, effects);
                }
            }
        };
        self.metrics.in_flight_at_stop =
            self.queue.iter().filter(|e| matches!(e.kind, EventKind::Deliver(_))).count() as u64;

        // Capture the final outputs/rounds even for processes that decided
        // without emitting Effect::Output (e.g. via their `output()` hook).
        for id in NodeId::all(self.config.n) {
            // lint: allow(panic) — World::new populates every slot before run() can be called
            let p = self.procs[id.index()].as_ref().expect("slot populated");
            if let std::collections::btree_map::Entry::Vacant(e) = self.outputs.entry(id) {
                if let Some(o) = p.output() {
                    e.insert(o);
                    self.output_times.insert(id, self.now);
                    self.output_rounds.insert(id, p.round());
                }
            }
        }
        let max_round = (0..self.config.n)
            .filter(|&i| !self.faulty[i])
            .filter_map(|i| self.procs[i].as_ref().map(|p| p.round()))
            .max()
            .unwrap_or(0);

        Report {
            stop,
            end_time: self.now,
            outputs: self.outputs,
            output_times: self.output_times,
            output_rounds: self.output_rounds,
            max_round,
            metrics: self.metrics,
            correct: (0..self.config.n).filter(|&i| !self.faulty[i]).map(NodeId::new).collect(),
            trace: self.trace.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedDelay, FnScheduler, UniformDelay};

    /// Node 0 broadcasts a token; every node decides on the first token it
    /// receives (including its own loopback copy).
    struct FirstToken {
        id: NodeId,
        is_source: bool,
        decided: Option<u8>,
    }

    impl Process for FirstToken {
        type Msg = u8;
        type Output = u8;

        fn id(&self) -> NodeId {
            self.id
        }

        fn on_start(&mut self) -> Vec<Effect<u8, u8>> {
            if self.is_source {
                vec![Effect::Broadcast { msg: 42 }]
            } else {
                Vec::new()
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: &u8) -> Vec<Effect<u8, u8>> {
            if self.decided.is_none() {
                self.decided = Some(*msg);
                return vec![Effect::Output(*msg), Effect::Halt];
            }
            Vec::new()
        }

        fn output(&self) -> Option<u8> {
            self.decided
        }

        fn is_halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    fn token_world<S: Scheduler<u8>>(n: usize, scheduler: S) -> World<u8, u8, S> {
        let mut world = World::new(WorldConfig::new(n), scheduler);
        for id in NodeId::all(n) {
            world.add_process(Box::new(FirstToken {
                id,
                is_source: id.index() == 0,
                decided: None,
            }));
        }
        world
    }

    #[test]
    fn all_nodes_receive_broadcast() {
        let report = token_world(5, FixedDelay::new(2)).run();
        assert_eq!(report.stop, StopReason::Completed);
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
        assert_eq!(report.unanimous_output(), Some(42));
        assert_eq!(report.metrics.sent, 5); // broadcast = n sends
        assert_eq!(report.metrics.delivered, 5);
    }

    #[test]
    fn runs_are_deterministic_for_equal_seeds() {
        let r1 = token_world(6, UniformDelay::new(1, 50, 7)).run();
        let r2 = token_world(6, UniformDelay::new(1, 50, 7)).run();
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.output_times, r2.output_times);
        assert_eq!(r1.metrics.sent, r2.metrics.sent);
    }

    #[test]
    fn fifo_links_preserve_per_link_order() {
        /// Source sends 0,1,2,...,9 to node 1; node 1 records the order.
        struct Burst {
            id: NodeId,
        }
        impl Process for Burst {
            type Msg = u8;
            type Output = Vec<u8>;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<u8, Vec<u8>>> {
                (0..10).map(|i| Effect::Send { to: NodeId::new(1), msg: i }).collect()
            }
            fn on_message(&mut self, _f: NodeId, _m: &u8) -> Vec<Effect<u8, Vec<u8>>> {
                Vec::new()
            }
        }
        struct Sink {
            id: NodeId,
            got: Vec<u8>,
        }
        impl Process for Sink {
            type Msg = u8;
            type Output = Vec<u8>;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<u8, Vec<u8>>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: NodeId, m: &u8) -> Vec<Effect<u8, Vec<u8>>> {
                self.got.push(*m);
                if self.got.len() == 10 {
                    vec![Effect::Output(self.got.clone())]
                } else {
                    Vec::new()
                }
            }
            fn output(&self) -> Option<Vec<u8>> {
                (self.got.len() == 10).then(|| self.got.clone())
            }
        }

        // An adversarial scheduler that tries to reorder: later messages
        // get *smaller* delays. FIFO clamping must still deliver in order.
        let mut countdown = 100u64;
        let sched = FnScheduler::new(move |_env: &Envelope<u8>, _now| {
            countdown = countdown.saturating_sub(7);
            countdown
        });
        let mut world: World<u8, Vec<u8>, _> = World::new(WorldConfig::new(2), sched);
        world.add_process(Box::new(Burst { id: NodeId::new(0) }));
        world.add_process(Box::new(Sink { id: NodeId::new(1), got: Vec::new() }));
        let report = world.run();
        assert_eq!(
            report.output_of(NodeId::new(1)),
            Some((0..10).collect::<Vec<u8>>()),
            "per-link FIFO order must survive adversarial delays"
        );
    }

    #[test]
    fn faulty_nodes_do_not_block_completion() {
        struct Silent {
            id: NodeId,
        }
        impl Process for Silent {
            type Msg = u8;
            type Output = u8;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<u8, u8>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: NodeId, _m: &u8) -> Vec<Effect<u8, u8>> {
                Vec::new()
            }
        }

        let n = 4;
        let mut world = World::new(WorldConfig::new(n), FixedDelay::new(1));
        for id in NodeId::all(n) {
            if id.index() == 3 {
                world.add_faulty_process(Box::new(Silent { id }));
            } else {
                world.add_process(Box::new(FirstToken {
                    id,
                    is_source: id.index() == 0,
                    decided: None,
                }));
            }
        }
        let report = world.run();
        assert_eq!(report.stop, StopReason::Completed);
        assert_eq!(report.correct.len(), 3);
        assert!(report.all_correct_decided());
    }

    #[test]
    fn queue_drain_is_reported_when_protocol_stalls() {
        struct Mute {
            id: NodeId,
        }
        impl Process for Mute {
            type Msg = u8;
            type Output = u8;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<u8, u8>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: NodeId, _m: &u8) -> Vec<Effect<u8, u8>> {
                Vec::new()
            }
        }
        let mut world: World<u8, u8, _> = World::new(WorldConfig::new(2), FixedDelay::new(1));
        world.add_process(Box::new(Mute { id: NodeId::new(0) }));
        world.add_process(Box::new(Mute { id: NodeId::new(1) }));
        let report = world.run();
        assert_eq!(report.stop, StopReason::QueueDrained);
        assert!(!report.all_correct_decided());
    }

    #[test]
    fn budget_exhaustion_stops_chatter() {
        /// Two nodes ping-pong forever.
        struct PingPong {
            id: NodeId,
        }
        impl Process for PingPong {
            type Msg = u8;
            type Output = u8;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<u8, u8>> {
                vec![Effect::Send { to: NodeId::new(1 - self.id.index()), msg: 0 }]
            }
            fn on_message(&mut self, from: NodeId, m: &u8) -> Vec<Effect<u8, u8>> {
                vec![Effect::Send { to: from, msg: *m }]
            }
        }
        let config = WorldConfig::new(2).max_delivered(100);
        let mut world: World<u8, u8, _> = World::new(config, FixedDelay::new(1));
        world.add_process(Box::new(PingPong { id: NodeId::new(0) }));
        world.add_process(Box::new(PingPong { id: NodeId::new(1) }));
        let report = world.run();
        assert_eq!(report.stop, StopReason::BudgetExhausted);
        assert!(report.metrics.delivered <= 101);
    }

    #[test]
    fn messages_to_halted_nodes_are_dropped() {
        let report = token_world(3, FixedDelay::new(1)).run();
        // With the default AllCorrectOutput policy nothing is dropped
        // before the stop; re-run to queue drain to observe drops.
        assert_eq!(report.stop, StopReason::Completed);

        let mut world = token_world(3, FixedDelay::new(1));
        world.config = WorldConfig::new(3).stop_policy(StopPolicy::QueueDrain);
        let report = world.run();
        // Source broadcasts 3 messages; each node halts after its first
        // delivery. Every node receives exactly one message (its first),
        // and 0 further messages exist, so nothing is dropped here either —
        // but the halting flags must be respected if they were.
        assert_eq!(report.stop, StopReason::QueueDrained);
        assert!(report.all_correct_decided());
    }

    #[test]
    fn trace_capture_records_events() {
        let mut world = token_world(2, FixedDelay::new(1));
        world.config = WorldConfig::new(2).capture_trace(true);
        let report = world.run();
        assert!(report.trace.iter().any(|t| t.what == "start"));
        assert!(report.trace.iter().any(|t| t.what.starts_with("deliver")));
        assert!(report.trace.iter().any(|t| t.what == "output"));
    }

    #[test]
    fn trace_ring_buffer_keeps_only_the_most_recent_entries() {
        // A capped ping-pong run generates far more trace entries than
        // the configured capacity; the ring must retain exactly the last
        // `capacity`, in order.
        struct PingPong {
            id: NodeId,
        }
        impl Process for PingPong {
            type Msg = u8;
            type Output = u8;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<u8, u8>> {
                vec![Effect::Send { to: NodeId::new(1 - self.id.index()), msg: 0 }]
            }
            fn on_message(&mut self, from: NodeId, m: &u8) -> Vec<Effect<u8, u8>> {
                vec![Effect::Send { to: from, msg: *m }]
            }
        }
        let config = WorldConfig::new(2).max_delivered(500).capture_trace(true).trace_capacity(16);
        let mut world: World<u8, u8, _> = World::new(config, FixedDelay::new(1));
        world.add_process(Box::new(PingPong { id: NodeId::new(0) }));
        world.add_process(Box::new(PingPong { id: NodeId::new(1) }));
        let report = world.run();
        assert_eq!(report.trace.len(), 16, "ring must be capped at capacity");
        // Only the most recent entries survive: all retained timestamps
        // sit at the end of the run, in non-decreasing order.
        let times: Vec<u64> = report.trace.iter().map(|t| t.time.ticks()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "ring preserved order: {times:?}");
        assert!(times[0] > 1, "oldest entries must have been evicted");
    }

    #[test]
    #[should_panic(expected = "trace capacity must be positive")]
    fn zero_trace_capacity_rejected() {
        let _ = WorldConfig::new(2).trace_capacity(0);
    }

    #[test]
    #[should_panic(expected = "never populated")]
    fn run_requires_all_slots() {
        let world: World<u8, u8, _> = World::new(WorldConfig::new(2), FixedDelay::new(1));
        let _ = world.run();
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn duplicate_slot_panics() {
        let mut world: World<u8, u8, _> = World::new(WorldConfig::new(2), FixedDelay::new(1));
        world.add_process(Box::new(FirstToken {
            id: NodeId::new(0),
            is_source: true,
            decided: None,
        }));
        world.add_process(Box::new(FirstToken {
            id: NodeId::new(0),
            is_source: true,
            decided: None,
        }));
    }

    #[test]
    fn conservation_holds_for_every_stop_reason() {
        // Completed: everything sent was delivered or is still queued.
        let report = token_world(5, FixedDelay::new(2)).run();
        assert!(report.metrics.conserves(), "completed: {:?}", report.metrics);

        // Queue drained: nothing left in flight.
        let mut world = token_world(3, FixedDelay::new(1));
        world.config = WorldConfig::new(3).stop_policy(StopPolicy::QueueDrain);
        let report = world.run();
        assert_eq!(report.metrics.in_flight_at_stop, 0);
        assert!(report.metrics.conserves(), "drained: {:?}", report.metrics);

        // Budget exhausted: the unpopped remainder counts as in-flight.
        struct PingPong {
            id: NodeId,
        }
        impl Process for PingPong {
            type Msg = u8;
            type Output = u8;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<u8, u8>> {
                vec![Effect::Send { to: NodeId::new(1 - self.id.index()), msg: 0 }]
            }
            fn on_message(&mut self, from: NodeId, m: &u8) -> Vec<Effect<u8, u8>> {
                vec![Effect::Send { to: from, msg: *m }]
            }
        }
        let config = WorldConfig::new(2).max_delivered(100);
        let mut world: World<u8, u8, _> = World::new(config, FixedDelay::new(1));
        world.add_process(Box::new(PingPong { id: NodeId::new(0) }));
        world.add_process(Box::new(PingPong { id: NodeId::new(1) }));
        let report = world.run();
        assert_eq!(report.stop, StopReason::BudgetExhausted);
        assert_eq!(report.metrics.delivered, 100);
        assert!(report.metrics.in_flight_at_stop > 0);
        assert!(report.metrics.conserves(), "budget: {:?}", report.metrics);
    }

    #[test]
    fn observer_sees_transport_events() {
        use bft_obs::VecSink;

        let (obs, sink) = bft_obs::Obs::new(VecSink::new());
        let mut world = token_world(3, FixedDelay::new(2));
        world.set_observer(obs);
        let report = world.run();

        let events = sink.lock().take();
        let sends =
            events.iter().filter(|(_, _, e)| matches!(e, ObsEvent::MessageSent { .. })).count()
                as u64;
        let delivered = events
            .iter()
            .filter(|(_, _, e)| matches!(e, ObsEvent::MessageDelivered { .. }))
            .count() as u64;
        assert_eq!(sends, report.metrics.sent);
        assert_eq!(delivered, report.metrics.delivered);
        // Delivery timestamps carry the simulated clock.
        assert!(events
            .iter()
            .any(|(at, _, e)| matches!(e, ObsEvent::MessageDelivered { .. }) && *at == 2));
    }

    #[test]
    fn classifier_accounts_bytes() {
        let mut world = token_world(3, FixedDelay::new(1));
        world.set_classifier(|_m| MsgClass { kind: "token", bytes: 8 });
        let report = world.run();
        assert_eq!(report.metrics.bytes_sent, 24);
        assert_eq!(report.metrics.by_kind["token"].0, 3);
    }
}
