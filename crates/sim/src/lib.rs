//! A deterministic discrete-event simulator for asynchronous
//! message-passing protocols under adversarial scheduling.
//!
//! The paper's system model is a fully connected network of `n` processes
//! linked by reliable, authenticated, FIFO, *asynchronous* channels: every
//! message is delivered after an unbounded but finite delay chosen by an
//! adversary that can inspect message contents. Real networks cannot
//! express such a worst-case adversary, so this crate substitutes a
//! simulator in which the adversary is a pluggable [`Scheduler`] —
//! everything from a benign uniform-delay scheduler to a content-aware
//! anti-coin adversary (see `bft-adversary`).
//!
//! Design properties:
//!
//! * **Determinism** — given the same processes, scheduler and seed, a run
//!   is bit-for-bit reproducible. Events are ordered by `(time, sequence)`.
//! * **FIFO links** — per ordered pair of nodes, delivery order equals send
//!   order regardless of the delays the scheduler picks (the simulator
//!   clamps delivery times to be monotone per link), matching the paper's
//!   channel assumption.
//! * **Finite delay** — schedulers return a delay in simulated ticks; the
//!   simulator rejects infinite postponement by construction (every message
//!   is enqueued with a concrete delivery time).
//! * **Metrics** — message and byte counts, per-node decision times and
//!   rounds, online agreement checking.
//!
//! # Example
//!
//! ```
//! use bft_sim::{FixedDelay, World, WorldConfig};
//! use bft_types::{Effect, NodeId, Process};
//!
//! /// Every node broadcasts "hello" and decides once it has heard from all.
//! struct Hello { id: NodeId, n: usize, heard: usize, done: bool }
//!
//! impl Process for Hello {
//!     type Msg = ();
//!     type Output = usize;
//!     fn id(&self) -> NodeId { self.id }
//!     fn on_start(&mut self) -> Vec<Effect<(), usize>> {
//!         vec![Effect::Broadcast { msg: () }]
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: &()) -> Vec<Effect<(), usize>> {
//!         self.heard += 1;
//!         if self.heard == self.n && !self.done {
//!             self.done = true;
//!             return vec![Effect::Output(self.heard), Effect::Halt];
//!         }
//!         Vec::new()
//!     }
//!     fn output(&self) -> Option<usize> { self.done.then_some(self.heard) }
//!     fn is_halted(&self) -> bool { self.done }
//! }
//!
//! let n = 4;
//! let mut world = World::new(WorldConfig::new(n), FixedDelay::new(1));
//! for id in NodeId::all(n) {
//!     world.add_process(Box::new(Hello { id, n, heard: 0, done: false }));
//! }
//! let report = world.run();
//! assert!(report.all_correct_decided());
//! assert_eq!(report.output_of(NodeId::new(0)), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod report;
mod scheduler;
mod time;
mod world;

pub use event::TraceEntry;
pub use metrics::{Metrics, MsgClass};
pub use report::{Report, StopReason};
pub use scheduler::{
    BoxedScheduler, FixedDelay, FnScheduler, GeometricDelay, PartitionDelay, Scheduler,
    UniformDelay,
};
pub use time::SimTime;
pub use world::{ProcessFactory, StopPolicy, World, WorldConfig, DEFAULT_TRACE_CAPACITY};
