//! Internal event representation and optional tracing.

use crate::SimTime;
use bft_types::{Envelope, NodeId};
use std::cmp::Ordering;

/// What happens at a scheduled instant.
#[derive(Clone, Debug)]
pub(crate) enum EventKind<M> {
    /// A process takes its initial step.
    Start(NodeId),
    /// A message is delivered.
    Deliver(Envelope<M>),
    /// A process crashes: its state is dropped and deliveries to it are
    /// discarded until (unless) a restart is scheduled.
    Crash(NodeId),
    /// A crashed process is replaced by a fresh instance (from the
    /// factory registered with `World::schedule_restart`) and started.
    Restart(NodeId),
}

/// A scheduled event. Ordered by `(time, seq)` so that the run order is a
/// deterministic function of the schedule; `seq` is a global enqueue
/// counter breaking ties.
#[derive(Clone, Debug)]
pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// One line of a captured execution trace.
///
/// Traces are off by default (they allocate); enable them with
/// [`WorldConfig::capture_trace`](crate::WorldConfig::capture_trace) when
/// debugging a protocol interleaving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event fired.
    pub time: SimTime,
    /// The node the event was applied to.
    pub at: NodeId,
    /// Human-readable description (`start`, `deliver n2: <msg>` …).
    pub what: String,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.at, self.what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time: u64, seq: u64) -> Event<()> {
        Event { time: SimTime::from_ticks(time), seq, kind: EventKind::Start(NodeId::new(0)) }
    }

    #[test]
    fn heap_pops_earliest_first_with_seq_tiebreak() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(5, 0));
        heap.push(ev(1, 2));
        heap.push(ev(1, 1));
        heap.push(ev(3, 3));
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| heap.pop()).map(|e| (e.time.ticks(), e.seq)).collect();
        assert_eq!(order, vec![(1, 1), (1, 2), (3, 3), (5, 0)]);
    }

    #[test]
    fn trace_entry_displays() {
        let t =
            TraceEntry { time: SimTime::from_ticks(9), at: NodeId::new(2), what: "start".into() };
        assert_eq!(t.to_string(), "[t9] n2: start");
    }
}
