//! Message-delay schedulers: the simulator's model of the network
//! adversary.
//!
//! In the asynchronous model the adversary picks, for every message, an
//! arbitrary finite delay, and may inspect message contents to do so. A
//! [`Scheduler`] is exactly that adversary: the simulator asks it for a
//! delay (in ticks) for each message as it is sent. The simulator then
//! clamps delivery times so that each directed link stays FIFO.
//!
//! Benign schedulers live here; *malicious* content-aware schedulers (e.g.
//! the anti-coin adversary that tries to keep correct nodes split) live in
//! `bft-adversary` because they need to understand protocol messages.

use bft_types::Envelope;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::SimTime;

/// The network adversary: chooses a delivery delay for every message.
///
/// Implementations may keep state (e.g. per-link counters) and randomness
/// (seed it from the run seed for reproducibility). Returned delays are in
/// simulated ticks; `0` is allowed and is clamped to the FIFO constraint by
/// the simulator.
pub trait Scheduler<M> {
    /// Chooses the delay for `envelope`, sent at time `now`.
    fn delay(&mut self, envelope: &Envelope<M>, now: SimTime) -> u64;
}

/// A boxed scheduler, for heterogeneous harness code.
pub type BoxedScheduler<M> = Box<dyn Scheduler<M> + Send>;

impl<M> Scheduler<M> for BoxedScheduler<M> {
    fn delay(&mut self, envelope: &Envelope<M>, now: SimTime) -> u64 {
        (**self).delay(envelope, now)
    }
}

/// Delivers every message after the same fixed delay — the most benign
/// schedule (effectively a synchronous network).
///
/// # Example
///
/// ```
/// use bft_sim::{FixedDelay, Scheduler, SimTime};
/// use bft_types::{Envelope, NodeId};
///
/// let mut s = FixedDelay::new(3);
/// let env = Envelope::new(NodeId::new(0), NodeId::new(1), ());
/// assert_eq!(s.delay(&env, SimTime::ZERO), 3);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FixedDelay {
    delay: u64,
}

impl FixedDelay {
    /// Creates a scheduler delivering after exactly `delay` ticks.
    pub const fn new(delay: u64) -> Self {
        FixedDelay { delay }
    }
}

impl<M> Scheduler<M> for FixedDelay {
    fn delay(&mut self, _envelope: &Envelope<M>, _now: SimTime) -> u64 {
        self.delay
    }
}

/// Delivers each message after an independent uniform random delay in
/// `[min, max]` — the canonical "random asynchrony" schedule used by most
/// experiments.
#[derive(Clone, Debug)]
pub struct UniformDelay {
    min: u64,
    max: u64,
    rng: ChaCha8Rng,
}

impl UniformDelay {
    /// Creates a uniform scheduler with delays in `[min, max]`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: u64, max: u64, seed: u64) -> Self {
        assert!(min <= max, "min delay must not exceed max delay");
        UniformDelay { min, max, rng: ChaCha8Rng::seed_from_u64(seed) }
    }
}

impl<M> Scheduler<M> for UniformDelay {
    fn delay(&mut self, _envelope: &Envelope<M>, _now: SimTime) -> u64 {
        self.rng.gen_range(self.min..=self.max)
    }
}

/// Delivers each message after a geometrically distributed delay: each
/// tick the message "arrives" with probability `p_per_mille / 1000`,
/// capped at `max`. A heavy-tailed model closer to real network
/// asynchrony than uniform delays — most messages are fast, a few
/// straggle badly.
#[derive(Clone, Debug)]
pub struct GeometricDelay {
    p_per_mille: u32,
    max: u64,
    rng: ChaCha8Rng,
}

impl GeometricDelay {
    /// Creates a geometric scheduler with per-tick arrival probability
    /// `p_per_mille / 1000`, capped at `max` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `p_per_mille` is 0 or greater than 1000, or `max` is 0.
    pub fn new(p_per_mille: u32, max: u64, seed: u64) -> Self {
        assert!((1..=1000).contains(&p_per_mille), "arrival probability must be in (0, 1]");
        assert!(max > 0, "max delay must be positive");
        GeometricDelay { p_per_mille, max, rng: ChaCha8Rng::seed_from_u64(seed ^ 0x6e0) }
    }
}

impl<M> Scheduler<M> for GeometricDelay {
    fn delay(&mut self, _envelope: &Envelope<M>, _now: SimTime) -> u64 {
        let mut ticks = 1u64;
        while ticks < self.max && !self.rng.gen_ratio(self.p_per_mille, 1000) {
            ticks += 1;
        }
        ticks
    }
}

/// Splits nodes into two groups and delays all *cross-group* messages by a
/// large factor until a cutoff time — a temporary network partition, the
/// classic stressor for asynchronous protocols (they must not lose safety,
/// only time).
#[derive(Clone, Debug)]
pub struct PartitionDelay {
    /// Nodes with index < `boundary` form group A; the rest group B.
    boundary: usize,
    /// Delay for intra-group messages.
    near: u64,
    /// Delay for cross-group messages while the partition holds.
    far: u64,
    /// The partition heals at this time; afterwards all messages use `near`.
    heal_at: SimTime,
}

impl PartitionDelay {
    /// Creates a partition between nodes `0..boundary` and the rest,
    /// healing at `heal_at`.
    pub const fn new(boundary: usize, near: u64, far: u64, heal_at: SimTime) -> Self {
        PartitionDelay { boundary, near, far, heal_at }
    }
}

impl<M> Scheduler<M> for PartitionDelay {
    fn delay(&mut self, envelope: &Envelope<M>, now: SimTime) -> u64 {
        let cross =
            (envelope.from.index() < self.boundary) != (envelope.to.index() < self.boundary);
        if cross && now < self.heal_at {
            self.far
        } else {
            self.near
        }
    }
}

/// Adapts a closure into a [`Scheduler`]; convenient for one-off
/// experiment-specific adversaries.
///
/// # Example
///
/// ```
/// use bft_sim::{FnScheduler, Scheduler, SimTime};
/// use bft_types::{Envelope, NodeId};
///
/// // Starve node 0: everything addressed to it is slow.
/// let mut s = FnScheduler::new(|env: &Envelope<()>, _now| {
///     if env.to == NodeId::new(0) { 100 } else { 1 }
/// });
/// let env = Envelope::new(NodeId::new(1), NodeId::new(0), ());
/// assert_eq!(s.delay(&env, SimTime::ZERO), 100);
/// ```
#[derive(Clone, Debug)]
pub struct FnScheduler<F> {
    f: F,
}

impl<F> FnScheduler<F> {
    /// Wraps `f` as a scheduler.
    pub const fn new(f: F) -> Self {
        FnScheduler { f }
    }
}

impl<M, F> Scheduler<M> for FnScheduler<F>
where
    F: FnMut(&Envelope<M>, SimTime) -> u64,
{
    fn delay(&mut self, envelope: &Envelope<M>, now: SimTime) -> u64 {
        (self.f)(envelope, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::NodeId;

    fn env(from: usize, to: usize) -> Envelope<u8> {
        Envelope::new(NodeId::new(from), NodeId::new(to), 0)
    }

    #[test]
    fn fixed_delay_is_constant() {
        let mut s = FixedDelay::new(7);
        for i in 0..5 {
            assert_eq!(Scheduler::<u8>::delay(&mut s, &env(0, i), SimTime::ZERO), 7);
        }
    }

    #[test]
    fn uniform_delay_stays_in_range_and_is_reproducible() {
        let mut a = UniformDelay::new(2, 9, 42);
        let mut b = UniformDelay::new(2, 9, 42);
        for i in 0..100 {
            let da = Scheduler::<u8>::delay(&mut a, &env(0, i % 4), SimTime::ZERO);
            let db = Scheduler::<u8>::delay(&mut b, &env(0, i % 4), SimTime::ZERO);
            assert_eq!(da, db);
            assert!((2..=9).contains(&da));
        }
    }

    #[test]
    fn uniform_different_seeds_differ() {
        let mut a = UniformDelay::new(0, 1000, 1);
        let mut b = UniformDelay::new(0, 1000, 2);
        let da: Vec<u64> =
            (0..10).map(|_| Scheduler::<u8>::delay(&mut a, &env(0, 1), SimTime::ZERO)).collect();
        let db: Vec<u64> =
            (0..10).map(|_| Scheduler::<u8>::delay(&mut b, &env(0, 1), SimTime::ZERO)).collect();
        assert_ne!(da, db);
    }

    #[test]
    #[should_panic(expected = "min delay")]
    fn uniform_rejects_inverted_range() {
        let _ = UniformDelay::new(5, 2, 0);
    }

    #[test]
    fn partition_delays_cross_traffic_until_heal() {
        let mut s = PartitionDelay::new(2, 1, 50, SimTime::from_ticks(100));
        // cross-group, before heal
        assert_eq!(Scheduler::<u8>::delay(&mut s, &env(0, 3), SimTime::ZERO), 50);
        // intra-group, before heal
        assert_eq!(Scheduler::<u8>::delay(&mut s, &env(0, 1), SimTime::ZERO), 1);
        assert_eq!(Scheduler::<u8>::delay(&mut s, &env(2, 3), SimTime::ZERO), 1);
        // cross-group, after heal
        assert_eq!(Scheduler::<u8>::delay(&mut s, &env(0, 3), SimTime::from_ticks(100)), 1);
    }

    #[test]
    fn geometric_delay_is_heavy_tailed_and_capped() {
        let mut s = GeometricDelay::new(200, 50, 3);
        let delays: Vec<u64> =
            (0..2000).map(|_| Scheduler::<u8>::delay(&mut s, &env(0, 1), SimTime::ZERO)).collect();
        assert!(delays.iter().all(|&d| (1..=50).contains(&d)));
        let mean = delays.iter().sum::<u64>() as f64 / delays.len() as f64;
        // Geometric with p = 0.2 has mean ≈ 5.
        assert!((3.0..8.0).contains(&mean), "mean {mean}");
        assert!(delays.iter().any(|&d| d > 10), "tail must exist");
    }

    #[test]
    #[should_panic(expected = "arrival probability")]
    fn geometric_rejects_zero_probability() {
        let _ = GeometricDelay::new(0, 10, 0);
    }

    #[test]
    fn boxed_scheduler_dispatches() {
        let mut s: BoxedScheduler<u8> = Box::new(FixedDelay::new(4));
        assert_eq!(s.delay(&env(1, 2), SimTime::ZERO), 4);
    }
}
