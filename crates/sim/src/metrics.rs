//! Run metrics collected by the simulator.

use bft_types::NodeId;
use std::collections::BTreeMap;

/// Classification of a message for accounting purposes: a protocol-level
/// kind label plus an approximate wire size in bytes.
///
/// The simulator is transport-agnostic, so byte counts are whatever the
/// classifier reports — the experiments use a per-protocol estimate of the
/// serialized size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgClass {
    /// Protocol-level message kind (e.g. `"echo"`).
    pub kind: &'static str,
    /// Approximate serialized size in bytes.
    pub bytes: usize,
}

/// Counters accumulated during a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total messages enqueued for delivery.
    pub sent: u64,
    /// Total messages actually delivered to a process.
    pub delivered: u64,
    /// Messages dropped because the destination had halted.
    pub dropped_to_halted: u64,
    /// Messages enqueued, per sending node.
    pub sent_by: BTreeMap<NodeId, u64>,
    /// Approximate bytes enqueued (only if a classifier is installed).
    pub bytes_sent: u64,
    /// Per message-kind counts and bytes (only if a classifier is
    /// installed). Keyed by the classifier's kind label.
    pub by_kind: BTreeMap<&'static str, (u64, u64)>,
    /// Number of events processed (starts + deliveries).
    pub events: u64,
    /// Messages still queued for delivery when the run stopped.
    pub in_flight_at_stop: u64,
}

impl Metrics {
    /// Records a message enqueue by `from`, optionally classified.
    pub(crate) fn record_send(&mut self, from: NodeId, class: Option<MsgClass>) {
        self.sent += 1;
        *self.sent_by.entry(from).or_insert(0) += 1;
        if let Some(c) = class {
            self.bytes_sent += c.bytes as u64;
            let slot = self.by_kind.entry(c.kind).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += c.bytes as u64;
        }
    }

    /// Records a message handed to its destination process.
    pub(crate) fn record_delivery(&mut self) {
        self.delivered += 1;
    }

    /// Records a message dropped because its destination had halted.
    pub(crate) fn record_drop(&mut self) {
        self.dropped_to_halted += 1;
    }

    /// Messages sent by one node.
    pub fn sent_by(&self, id: NodeId) -> u64 {
        self.sent_by.get(&id).copied().unwrap_or(0)
    }

    /// Message conservation: every message enqueued was either delivered,
    /// dropped at a halted destination, or still in flight when the run
    /// stopped. The simulator's accounting guarantees this identity; a
    /// failure means a bookkeeping bug, not a protocol bug.
    pub fn conserves(&self) -> bool {
        self.sent == self.delivered + self.dropped_to_halted + self.in_flight_at_stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_accumulates_per_node_and_kind() {
        let mut m = Metrics::default();
        m.record_send(NodeId::new(0), Some(MsgClass { kind: "echo", bytes: 10 }));
        m.record_send(NodeId::new(0), Some(MsgClass { kind: "echo", bytes: 10 }));
        m.record_send(NodeId::new(1), Some(MsgClass { kind: "ready", bytes: 4 }));
        m.record_send(NodeId::new(2), None);

        assert_eq!(m.sent, 4);
        assert_eq!(m.sent_by(NodeId::new(0)), 2);
        assert_eq!(m.sent_by(NodeId::new(9)), 0);
        assert_eq!(m.bytes_sent, 24);
        assert_eq!(m.by_kind["echo"], (2, 20));
        assert_eq!(m.by_kind["ready"], (1, 4));
    }

    #[test]
    fn conservation_accounts_for_every_send() {
        let mut m = Metrics::default();
        for _ in 0..5 {
            m.record_send(NodeId::new(0), None);
        }
        m.record_delivery();
        m.record_delivery();
        m.record_drop();
        assert!(!m.conserves(), "two sends unaccounted for");
        m.in_flight_at_stop = 2;
        assert!(m.conserves());
    }
}
