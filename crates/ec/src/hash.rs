//! FNV-1a 64-bit hashing — the commitment primitive of this crate.
//!
//! The transport layer already standardises on FNV-1a for frame checksums
//! and its placeholder MAC; the fragment commitment reuses the same
//! primitive so the whole stack stays dependency-free. `bft-ec` sits below
//! `bft-net` in the crate graph, so it carries its own copy rather than
//! importing one.
//!
//! FNV is **not collision-resistant**: like the transport MAC it models
//! where a cryptographic hash (BLAKE3, SHA-256) plugs in, with the exact
//! streaming shape a real implementation would have.

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64 hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Creates a hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: OFFSET }
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
        self
    }

    /// Feeds a little-endian `u64` into the hash.
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
