//! A binary Merkle tree over fragment hashes.
//!
//! The tree commits the designated sender to the exact shard each node
//! receives: the root travels with every message of a coded-broadcast
//! instance, and a receiver accepts a fragment only when its inclusion
//! proof checks out against that root. Leaves, inner nodes and padding are
//! domain-separated so no value can play two roles.
//!
//! Leaf count is padded to the next power of two with a constant empty
//! hash, which keeps proofs a fixed length `log2(padded)` for every index.

use crate::hash::Fnv64;

const LEAF_DOMAIN: u8 = 0x4c;
const INNER_DOMAIN: u8 = 0x49;
const EMPTY_DOMAIN: u8 = 0x45;

/// Hash of the leaf committing shard `index` to its byte content.
pub fn leaf_hash(index: u16, shard: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(&[LEAF_DOMAIN]).update(&index.to_le_bytes()).update(shard);
    h.finish()
}

fn empty_hash() -> u64 {
    let mut h = Fnv64::new();
    h.update(&[EMPTY_DOMAIN]);
    h.finish()
}

fn inner(left: u64, right: u64) -> u64 {
    let mut h = Fnv64::new();
    h.update(&[INNER_DOMAIN]).update_u64(left).update_u64(right);
    h.finish()
}

/// Proof length for a tree of `leaf_count` leaves: `log2` of the padded
/// leaf count.
pub fn depth(leaf_count: usize) -> usize {
    leaf_count.next_power_of_two().trailing_zeros() as usize
}

fn padded(leaves: &[u64]) -> Vec<u64> {
    let mut level = leaves.to_vec();
    level.resize(leaves.len().next_power_of_two().max(1), empty_hash());
    level
}

/// The Merkle root over `leaves` (padded to a power of two).
pub fn root(leaves: &[u64]) -> u64 {
    let mut level = padded(leaves);
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| match pair {
                [l, r] => inner(*l, *r),
                // Unreachable: the padded level length is a power of two.
                _ => empty_hash(),
            })
            .collect();
    }
    level.first().copied().unwrap_or_else(empty_hash)
}

/// The sibling path authenticating leaf `index`, bottom-up.
///
/// Returns an empty proof if `index` is out of range (such a proof never
/// verifies against a multi-leaf root, so the caller needs no extra check).
pub fn proof(leaves: &[u64], index: usize) -> Vec<u64> {
    if index >= leaves.len() {
        return Vec::new();
    }
    let mut level = padded(leaves);
    let mut idx = index;
    let mut path = Vec::with_capacity(depth(leaves.len()));
    while level.len() > 1 {
        path.push(level.get(idx ^ 1).copied().unwrap_or_else(empty_hash));
        level = level
            .chunks(2)
            .map(|pair| match pair {
                [l, r] => inner(*l, *r),
                _ => empty_hash(),
            })
            .collect();
        idx /= 2;
    }
    path
}

/// Folds a sibling `path` over `leaf` at `index`, yielding the root the
/// path claims — the core of proof verification, exposed so callers that
/// bind the Merkle root into a larger commitment can recompute it.
pub fn fold(index: usize, leaf: u64, path: &[u64]) -> u64 {
    let mut acc = leaf;
    let mut idx = index;
    for sibling in path {
        acc = if idx.is_multiple_of(2) { inner(acc, *sibling) } else { inner(*sibling, acc) };
        idx /= 2;
    }
    acc
}

/// Checks that `leaf` sits at `index` in the tree of `leaf_count` leaves
/// with root `expected`, using the sibling `path`.
pub fn verify(expected: u64, leaf_count: usize, index: usize, leaf: u64, path: &[u64]) -> bool {
    if index >= leaf_count || path.len() != depth(leaf_count) {
        return false;
    }
    fold(index, leaf, path) == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<u64> {
        (0..n).map(|i| leaf_hash(i as u16, &[i as u8; 4])).collect()
    }

    #[test]
    fn every_leaf_proves_membership() {
        for n in 1..=17 {
            let ls = leaves(n);
            let r = root(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let p = proof(&ls, i);
                assert_eq!(p.len(), depth(n), "n={n} i={i}");
                assert!(verify(r, n, i, *leaf, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_wrong_index_wrong_root_all_fail() {
        let ls = leaves(7);
        let r = root(&ls);
        let p = proof(&ls, 3);
        let leaf3 = ls[3];
        assert!(verify(r, 7, 3, leaf3, &p));
        assert!(!verify(r, 7, 3, leaf3 ^ 1, &p));
        assert!(!verify(r, 7, 2, leaf3, &p));
        assert!(!verify(r ^ 1, 7, 3, leaf3, &p));
        assert!(!verify(r, 7, 9, leaf3, &p), "out-of-range index");
        assert!(!verify(r, 7, 3, leaf3, &p[..2]), "truncated proof");
    }

    #[test]
    fn proof_for_out_of_range_index_is_empty_and_rejected() {
        let ls = leaves(4);
        assert!(proof(&ls, 9).is_empty());
        assert!(!verify(root(&ls), 4, 9, ls[0], &[]));
    }

    #[test]
    fn single_leaf_tree_has_empty_proofs() {
        let ls = leaves(1);
        assert_eq!(depth(1), 0);
        assert!(verify(root(&ls), 1, 0, ls[0], &[]));
    }

    #[test]
    fn root_depends_on_leaf_order() {
        let mut ls = leaves(4);
        let r = root(&ls);
        ls.swap(1, 2);
        assert_ne!(root(&ls), r);
    }
}
