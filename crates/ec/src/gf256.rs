//! Arithmetic in GF(2^8), the field the Reed–Solomon code works over.
//!
//! The field is GF(2)[x] modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the same polynomial QR codes and
//! most storage erasure codes use. Addition is XOR; multiplication goes
//! through compile-time exp/log tables of the generator `x` (= 2), so the
//! hot encode/reconstruct loops are two table reads and an add.

/// The exp table holds `2^i` for `i` in `0..255`, repeated twice so that
/// `exp[log(a) + log(b)]` never needs a modulo reduction.
const EXP: [u8; 512] = TABLES.0;
/// `LOG[v]` is the discrete log of `v` base 2; `LOG[0]` is unused filler.
const LOG: [u8; 256] = TABLES.1;

const TABLES: ([u8; 512], [u8; 256]) = build_tables();

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
        i += 1;
    }
    while i < 512 {
        exp[i] = exp[i - 255];
        i += 1;
    }
    (exp, log)
}

/// Field addition (and subtraction — the field has characteristic 2).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via the log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let idx = LOG[a as usize] as usize + LOG[b as usize] as usize;
    EXP[idx]
}

/// Multiplicative inverse. `inv(0)` is defined as 0 so the function is
/// total; callers divide only by provably nonzero denominators (Lagrange
/// denominators over distinct evaluation points).
#[inline]
pub fn inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    let idx = 255 - LOG[a as usize] as usize;
    EXP[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_is_multiplicative_identity() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
        }
    }

    #[test]
    fn zero_annihilates() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn inverses_invert() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative_on_samples() {
        // Exhaustive associativity is 16M triples; a deterministic stride
        // covers the table structure just as well.
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0..=255u8).step_by(31) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributes_over_addition_on_samples() {
        for a in (0..=255u8).step_by(5) {
            for b in (0..=255u8).step_by(9) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn known_products() {
        // Hand-checked against the 0x11d tables.
        assert_eq!(mul(2, 2), 4);
        assert_eq!(mul(0x80, 2), 0x1d);
        assert_eq!(mul(0xff, 0xff), 0xe2);
    }
}
