//! Systematic Reed–Solomon erasure coding with fragment commitments, for
//! erasure-coded reliable broadcast (AVID-style).
//!
//! Bracha's broadcast re-echoes the full payload from every node, so a
//! B-byte payload costs O(n²·B) on the wire. The coded variant splits the
//! payload into `k = n − 2f` data shards, extends them to `n` fragments of
//! a Reed–Solomon codeword, and lets each node echo only *its own*
//! fragment — O(n·B/k) per broadcast step, O(n·B) overall. Any `k`
//! fragments reconstruct the payload, and `n − f` honest echoes always
//! contain at least `n − 2f = k` of them.
//!
//! A Byzantine sender could hand out fragments of *different* payloads; the
//! [`merkle`] commitment pins it down. The sender builds a Merkle tree over
//! the `n` fragment hashes and binds the root together with the payload
//! length and the `(n, k)` geometry into a single [`Commitment`] that
//! travels with every message. Receivers [`verify`] a fragment's inclusion
//! proof before counting it, and [`reconstruct`] re-encodes the decoded
//! payload and recomputes the commitment: if the sender committed to
//! anything other than a valid codeword, the check fails for **every**
//! `k`-subset of committed fragments (a subset that re-encodes to the
//! committed leaves *is* a codeword), so correct nodes agree on
//! success-with-identical-bytes or uniform failure — never a split.
//!
//! The crate is dependency-free and deterministic; the hash is the
//! workspace's placeholder FNV-1a (see [`hash`] for the caveat).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod hash;
pub mod merkle;

use std::fmt;

/// One erasure-coded fragment of a payload, as handed to (and echoed by)
/// one node.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fragment {
    /// Which of the `n` codeword positions this fragment holds.
    pub index: u16,
    /// Byte length of the original payload (shards are zero-padded).
    pub total_len: u32,
    /// This position's shard: `shard_len(total_len, k)` code bytes.
    pub shard: Vec<u8>,
    /// Merkle inclusion proof of `(index, shard)` under the commitment.
    pub proof: Vec<u64>,
}

impl Fragment {
    /// Wire/heap footprint estimate: shard bytes plus proof words.
    pub fn weight(&self) -> usize {
        self.shard.len() + self.proof.len() * 8
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frag#{}({}B of {})", self.index, self.shard.len(), self.total_len)
    }
}

/// The sender's output: the commitment root plus all `n` fragments,
/// fragment `i` destined for node `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coded {
    /// Commitment binding the fragment set, payload length and geometry.
    pub root: u64,
    /// All `n` fragments, in index order.
    pub fragments: Vec<Fragment>,
}

/// Upper bound on the payload length a fragment may claim, aligned with
/// the net-layer frame cap. `total_len` arrives from the wire, and
/// reconstruction sizes shard interpolation and the output buffer from
/// it — an unchecked claim is a Byzantine memory-exhaustion vector.
pub const MAX_TOTAL_LEN: u32 = 1 << 20;

/// A typed erasure-coding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EcError {
    /// The `(n, k)` geometry is unusable: need `1 ≤ k ≤ n ≤ 255`.
    BadGeometry {
        /// Total number of fragments requested.
        n: usize,
        /// Data shards (reconstruction threshold) requested.
        k: usize,
    },
    /// The payload exceeds the `u32` length the commitment binds.
    PayloadTooLarge {
        /// Actual payload length.
        len: usize,
    },
    /// Fewer than `k` usable fragments were supplied.
    NotEnoughFragments {
        /// Distinct usable fragments seen.
        have: usize,
        /// Fragments required (`k`).
        need: usize,
    },
    /// Supplied fragments disagree on geometry (lengths, duplicate or
    /// out-of-range indices) — they cannot all belong to one commitment.
    InconsistentFragments,
    /// The decoded payload re-encodes to a different commitment: the
    /// sender committed to a non-codeword. Uniform across all subsets.
    RootMismatch,
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcError::BadGeometry { n, k } => {
                write!(f, "unusable erasure geometry n={n} k={k} (need 1 <= k <= n <= 255)")
            }
            EcError::PayloadTooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds the u32 commitment bound")
            }
            EcError::NotEnoughFragments { have, need } => {
                write!(f, "{have} usable fragments but reconstruction needs {need}")
            }
            EcError::InconsistentFragments => {
                write!(f, "fragments disagree on index/length geometry")
            }
            EcError::RootMismatch => {
                write!(f, "decoded payload does not re-encode to the committed root")
            }
        }
    }
}

impl std::error::Error for EcError {}

/// Shard length for a payload of `total_len` bytes split `k` ways: the
/// ceiling division, with a 1-byte floor so the empty payload still has a
/// well-defined (all-zero) codeword.
pub fn shard_len(total_len: usize, k: usize) -> usize {
    if k == 0 {
        return 0;
    }
    (total_len.div_ceil(k)).max(1)
}

fn check_geometry(n: usize, k: usize) -> Result<(), EcError> {
    if k == 0 || k > n || n > 255 {
        return Err(EcError::BadGeometry { n, k });
    }
    Ok(())
}

/// Lagrange basis coefficients: evaluating the unique degree `< xs.len()`
/// polynomial through points `xs` at `x` is the dot product of these
/// coefficients with the values at `xs`. Points must be distinct.
fn lagrange_coeffs(xs: &[u8], x: u8) -> Vec<u8> {
    xs.iter()
        .enumerate()
        .map(|(i, &xi)| {
            let mut num = 1u8;
            let mut den = 1u8;
            for (j, &xj) in xs.iter().enumerate() {
                if j != i {
                    num = gf256::mul(num, gf256::add(x, xj));
                    den = gf256::mul(den, gf256::add(xi, xj));
                }
            }
            gf256::mul(num, gf256::inv(den))
        })
        .collect()
}

/// Evaluates the interpolation of (`xs`, `shards`) at `x`, byte-wise over
/// shards of length `len`.
fn interpolate_shard(xs: &[u8], shards: &[&[u8]], x: u8, len: usize) -> Vec<u8> {
    let coeffs = lagrange_coeffs(xs, x);
    let mut out = vec![0u8; len];
    for (coeff, shard) in coeffs.iter().zip(shards) {
        if *coeff == 0 {
            continue;
        }
        for (o, &b) in out.iter_mut().zip(shard.iter()) {
            *o = gf256::add(*o, gf256::mul(*coeff, b));
        }
    }
    out
}

/// Extends `k` data shards to the full `n`-shard codeword (positions
/// `0..k` are the data shards themselves — the code is systematic).
fn extend(data: &[Vec<u8>], n: usize, len: usize) -> Vec<Vec<u8>> {
    let k = data.len();
    let xs: Vec<u8> = (0..k as u8).collect();
    let views: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut shards: Vec<Vec<u8>> = data.to_vec();
    for x in k..n {
        shards.push(interpolate_shard(&xs, &views, x as u8, len));
    }
    shards
}

/// Binds the Merkle root over the fragment leaves together with the
/// payload length and the `(n, k)` geometry. Every fragment verified
/// against one commitment therefore carries the same `total_len`, the same
/// shard length, and the same code — the precondition for reconstruction
/// to be subset-independent.
fn commitment(leaves_root: u64, total_len: u32, n: usize, k: usize) -> u64 {
    let mut h = hash::Fnv64::new();
    h.update(b"ec-commit")
        .update_u64(leaves_root)
        .update_u64(u64::from(total_len))
        .update(&[n as u8, k as u8]);
    h.finish()
}

fn shards_commitment(shards: &[Vec<u8>], total_len: u32, n: usize, k: usize) -> u64 {
    let leaves: Vec<u64> =
        shards.iter().enumerate().map(|(i, s)| merkle::leaf_hash(i as u16, s)).collect();
    commitment(merkle::root(&leaves), total_len, n, k)
}

/// Encodes `payload` into `n` committed fragments, any `k` of which
/// reconstruct it.
pub fn encode(payload: &[u8], n: usize, k: usize) -> Result<Coded, EcError> {
    check_geometry(n, k)?;
    let total_len = u32::try_from(payload.len())
        .map_err(|_| EcError::PayloadTooLarge { len: payload.len() })?;
    let len = shard_len(payload.len(), k);
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            let start = (i * len).min(payload.len());
            let end = ((i + 1) * len).min(payload.len());
            let mut shard = payload[start..end].to_vec();
            shard.resize(len, 0);
            shard
        })
        .collect();
    let shards = extend(&data, n, len);
    let leaves: Vec<u64> =
        shards.iter().enumerate().map(|(i, s)| merkle::leaf_hash(i as u16, s)).collect();
    let leaves_root = merkle::root(&leaves);
    let root = commitment(leaves_root, total_len, n, k);
    let fragments = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| Fragment {
            index: i as u16,
            total_len,
            shard,
            proof: merkle::proof(&leaves, i),
        })
        .collect();
    Ok(Coded { root, fragments })
}

/// Checks a fragment against a commitment: geometry, shard length, and
/// Merkle inclusion. A fragment that passes is exactly what the sender
/// committed for that index.
pub fn verify(root: u64, n: usize, k: usize, frag: &Fragment) -> bool {
    if check_geometry(n, k).is_err() {
        return false;
    }
    let index = frag.index as usize;
    if index >= n || frag.shard.len() != shard_len(frag.total_len as usize, k) {
        return false;
    }
    if frag.proof.len() != merkle::depth(n) {
        return false;
    }
    // Recompute what the commitment's Merkle root must have been, then
    // re-bind it: the proof authenticates the leaf under that root.
    let leaf = merkle::leaf_hash(frag.index, &frag.shard);
    let leaves_root = merkle::fold(index, leaf, &frag.proof);
    commitment(leaves_root, frag.total_len, n, k) == root
}

/// Reconstructs the payload from at least `k` verified fragments of one
/// commitment, then re-encodes and checks the commitment.
///
/// Callers must have [`verify`]ed each fragment against `root` first; this
/// function still validates the mutual geometry (so it is total), decodes,
/// and performs the codeword check that defends against a Byzantine sender
/// committing to a non-codeword. On success the returned bytes are exactly
/// the sender's payload, identical across every `k`-subset.
pub fn reconstruct(
    root: u64,
    n: usize,
    k: usize,
    fragments: &[Fragment],
) -> Result<Vec<u8>, EcError> {
    check_geometry(n, k)?;
    // Deduplicate by index, keeping the first occurrence of each.
    let mut seen = [false; 256];
    let mut picked: Vec<&Fragment> = Vec::with_capacity(k);
    for frag in fragments {
        let idx = frag.index as usize;
        if idx < n && !seen[idx] {
            seen[idx] = true;
            picked.push(frag);
            if picked.len() == k {
                break;
            }
        }
    }
    if picked.len() < k {
        return Err(EcError::NotEnoughFragments { have: picked.len(), need: k });
    }
    let Some(first) = picked.first() else {
        return Err(EcError::NotEnoughFragments { have: 0, need: k });
    };
    let total_len = first.total_len;
    if total_len > MAX_TOTAL_LEN {
        return Err(EcError::PayloadTooLarge { len: total_len as usize });
    }
    let len = shard_len(total_len as usize, k);
    if picked.iter().any(|f| f.total_len != total_len || f.shard.len() != len) {
        return Err(EcError::InconsistentFragments);
    }

    // Interpolate the data shards from the picked k points (systematic:
    // points already in 0..k pass through).
    let xs: Vec<u8> = picked.iter().map(|f| f.index as u8).collect();
    let views: Vec<&[u8]> = picked.iter().map(|f| f.shard.as_slice()).collect();
    let data: Vec<Vec<u8>> = (0..k).map(|x| interpolate_shard(&xs, &views, x as u8, len)).collect();

    // Codeword check: the decoded payload must re-commit to `root`.
    let shards = extend(&data, n, len);
    if shards_commitment(&shards, total_len, n, k) != root {
        return Err(EcError::RootMismatch);
    }

    let mut payload: Vec<u8> = Vec::with_capacity(k * len);
    for shard in &data {
        payload.extend_from_slice(shard);
    }
    payload.truncate(total_len as usize);
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn systematic_data_shards_are_payload_chunks() {
        let p = payload(20);
        let coded = encode(&p, 7, 4).unwrap();
        let len = shard_len(20, 4);
        assert_eq!(len, 5);
        for i in 0..4 {
            assert_eq!(&coded.fragments[i].shard[..], &p[i * len..(i + 1) * len]);
        }
    }

    #[test]
    fn every_fragment_verifies_and_corruption_is_rejected() {
        let p = payload(100);
        let coded = encode(&p, 10, 4).unwrap();
        for frag in &coded.fragments {
            assert!(verify(coded.root, 10, 4, frag));
            let mut bad = frag.clone();
            bad.shard[0] ^= 1;
            assert!(!verify(coded.root, 10, 4, &bad), "corrupted shard must fail");
            let mut bad = frag.clone();
            bad.index = (bad.index + 1) % 10;
            assert!(!verify(coded.root, 10, 4, &bad), "relabelled index must fail");
            let mut bad = frag.clone();
            bad.total_len += 1;
            assert!(!verify(coded.root, 10, 4, &bad), "length lie must fail");
            let mut bad = frag.clone();
            if let Some(h) = bad.proof.first_mut() {
                *h ^= 1;
            }
            assert!(!verify(coded.root, 10, 4, &bad), "broken proof must fail");
        }
    }

    #[test]
    fn wrong_geometry_never_verifies() {
        let coded = encode(&payload(64), 8, 3).unwrap();
        let frag = &coded.fragments[0];
        assert!(verify(coded.root, 8, 3, frag));
        assert!(!verify(coded.root, 8, 4, frag));
        assert!(!verify(coded.root, 9, 3, frag));
    }

    #[test]
    fn reconstructs_from_any_k_subset() {
        let p = payload(97);
        let (n, k) = (7, 3);
        let coded = encode(&p, n, k).unwrap();
        // All C(7,3) = 35 subsets.
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let subset = vec![
                        coded.fragments[a].clone(),
                        coded.fragments[b].clone(),
                        coded.fragments[c].clone(),
                    ];
                    let out = reconstruct(coded.root, n, k, &subset).unwrap();
                    assert_eq!(out, p, "subset ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn too_few_fragments_is_typed() {
        let coded = encode(&payload(50), 6, 3).unwrap();
        let err = reconstruct(coded.root, 6, 3, &coded.fragments[..2]).unwrap_err();
        assert_eq!(err, EcError::NotEnoughFragments { have: 2, need: 3 });
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let coded = encode(&payload(50), 6, 3).unwrap();
        let frags = vec![
            coded.fragments[1].clone(),
            coded.fragments[1].clone(),
            coded.fragments[1].clone(),
        ];
        let err = reconstruct(coded.root, 6, 3, &frags).unwrap_err();
        assert_eq!(err, EcError::NotEnoughFragments { have: 1, need: 3 });
    }

    #[test]
    fn non_codeword_commitment_fails_for_every_subset() {
        // A Byzantine sender commits to fragments of two *different*
        // payloads: whatever subset a receiver reconstructs from, the
        // re-encode check must fail (and fail for all of them — totality).
        let (n, k) = (6, 2);
        let a = encode(&payload(40), n, k).unwrap();
        let b = encode(&payload(41), n, k).unwrap();
        // Forge: take a's shards for even indices, b's for odd, and build
        // a fresh commitment over the mixed shard vector.
        let mixed: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    a.fragments[i].shard.clone()
                } else {
                    let mut s = b.fragments[i].shard.clone();
                    s.resize(a.fragments[i].shard.len(), 0);
                    s
                }
            })
            .collect();
        let leaves: Vec<u64> =
            mixed.iter().enumerate().map(|(i, s)| merkle::leaf_hash(i as u16, s)).collect();
        let root = commitment(merkle::root(&leaves), 40, n, k);
        let frags: Vec<Fragment> = mixed
            .iter()
            .enumerate()
            .map(|(i, shard)| Fragment {
                index: i as u16,
                total_len: 40,
                shard: shard.clone(),
                proof: merkle::proof(&leaves, i),
            })
            .collect();
        // Every fragment *verifies* (the sender really committed to it)…
        for f in &frags {
            assert!(verify(root, n, k, f));
        }
        // …but no 2-subset reconstructs: the committed vector is not a
        // codeword, so every interpolation misses some committed leaf.
        let mut failures = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let sub = vec![frags[i].clone(), frags[j].clone()];
                match reconstruct(root, n, k, &sub) {
                    Err(EcError::RootMismatch) => failures += 1,
                    other => panic!("subset ({i},{j}) must mismatch, got {other:?}"),
                }
            }
        }
        assert_eq!(failures, n * (n - 1) / 2);
    }

    #[test]
    fn empty_and_tiny_payloads_round_trip() {
        for len in [0usize, 1, 2, 3] {
            let p = payload(len);
            let coded = encode(&p, 4, 2).unwrap();
            let out = reconstruct(coded.root, 4, 2, &coded.fragments[2..]).unwrap();
            assert_eq!(out, p, "len {len}");
        }
    }

    #[test]
    fn k_equals_n_degenerates_to_plain_split() {
        let p = payload(33);
        let coded = encode(&p, 4, 4).unwrap();
        let out = reconstruct(coded.root, 4, 4, &coded.fragments).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn bad_geometry_is_typed() {
        assert_eq!(encode(&[1], 4, 0).unwrap_err(), EcError::BadGeometry { n: 4, k: 0 });
        assert_eq!(encode(&[1], 3, 4).unwrap_err(), EcError::BadGeometry { n: 3, k: 4 });
        assert_eq!(encode(&[1], 256, 4).unwrap_err(), EcError::BadGeometry { n: 256, k: 4 });
        assert!(!verify(
            0,
            3,
            4,
            &Fragment { index: 0, total_len: 1, shard: vec![1], proof: vec![] }
        ));
    }

    #[test]
    fn fragment_weight_and_display() {
        let coded = encode(&payload(64), 8, 4).unwrap();
        let frag = &coded.fragments[0];
        assert_eq!(frag.weight(), frag.shard.len() + frag.proof.len() * 8);
        assert!(frag.to_string().contains("frag#0"));
    }
}
