//! `bft-smr` — a replicated key-value state machine over atomic
//! broadcast, with RBC-agreed checkpoints, log truncation and peer
//! state transfer.
//!
//! [`bft_order::OrderProcess`] gives every correct node the same totally
//! ordered log; this crate makes the log *useful* and keeps it *finite*:
//!
//! * **Deterministic apply** — each committed `(epoch, proposer)` slot
//!   carries a canonically-encoded [`KvOp`] (put / del / cas). Every
//!   correct node folds the slot into a [`KvState`] the same way, so the
//!   FNV-chained state hash is identical cluster-wide. Malformed
//!   payloads (a Byzantine proposer controls those bytes) are folded
//!   into the hash chain but applied as no-ops, keeping all correct
//!   nodes byte-identical without trusting the payload.
//! * **Checkpoints** — every `checkpoint_interval` epochs (and at the
//!   run horizon) a node snapshots its state, RBC-broadcasts the
//!   snapshot hash, and waits for `2f + 1` *matching* delivered hashes —
//!   a checkpoint certificate. Certified history is dead: the ordered
//!   log below the checkpoint is truncated
//!   ([`OrderProcess::truncate_below`]), bounding retained state by the
//!   checkpoint interval instead of the run length.
//! * **State transfer** — a node that restarts (or falls behind a
//!   certified checkpoint it can no longer replay to, because its peers
//!   truncated that history) fetches the snapshot from its peers in
//!   erasure-coded chunks: each peer sends its own Reed–Solomon fragment
//!   of the snapshot, `k = n − 2f` verified fragments reconstruct it,
//!   and the FNV hash is checked against the certificate before the
//!   state is installed and the order cursor fast-forwarded
//!   ([`OrderProcess::fast_forward`]). Catch-up therefore costs
//!   `O(n · B)` bytes for a `B`-byte snapshot — the coded-RBC
//!   dissemination bound, not full-log replay.
//!
//! The whole machine is a sans-io [`Process`], so it runs unmodified on
//! the deterministic simulator, the threaded runtime and the TCP
//! transport; [`SmrMessage`] carries the wire arms through the v2 codec.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bft_coin::CoinScheme;
use bft_ec::{encode as ec_encode, reconstruct as ec_reconstruct, verify as ec_verify, Fragment};
use bft_net::codec::{put_u32, put_u64, Codec, DecodeError, Reader};
use bft_obs::{Event, Obs, TraceCtx, TracePhase};
use bft_order::{Backpressure, LogEntry, OrderLog, OrderMessage, OrderOptions, OrderProcess};
use bft_rbc::{RbcMux, RbcMuxAction, RbcMuxMessage};
use bft_types::{Config, Effect, NodeId, Process};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The FNV-1a hash of a canonical snapshot — the quantity checkpoint
/// certificates agree on and state transfer verifies against.
pub fn snapshot_hash(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// One operation of the replicated key-value service, with a canonical
/// binary encoding (discriminant byte, then `u32`-length-prefixed
/// fields).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Bind `key` to `value`.
    Put {
        /// The key to bind.
        key: Vec<u8>,
        /// The value to store.
        value: Vec<u8>,
    },
    /// Remove `key` if present.
    Del {
        /// The key to remove.
        key: Vec<u8>,
    },
    /// Compare-and-swap: bind `key` to `value` only if it is currently
    /// bound to `expect`.
    Cas {
        /// The key to conditionally rebind.
        key: Vec<u8>,
        /// The value the key must currently hold.
        expect: Vec<u8>,
        /// The replacement value.
        value: Vec<u8>,
    },
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn take_bytes(r: &mut Reader<'_>) -> Option<Vec<u8>> {
    let len = r.u32().ok()? as usize;
    // A hostile length prefix must not drive an allocation: cap it by
    // what the buffer can actually hold before taking.
    if len > r.remaining() {
        return None;
    }
    Some(r.take(len).ok()?.to_vec())
}

impl KvOp {
    /// Canonical encoding (the transaction payload submitted for
    /// ordering).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            KvOp::Put { key, value } => {
                out.push(0);
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            KvOp::Del { key } => {
                out.push(1);
                put_bytes(&mut out, key);
            }
            KvOp::Cas { key, expect, value } => {
                out.push(2);
                put_bytes(&mut out, key);
                put_bytes(&mut out, expect);
                put_bytes(&mut out, value);
            }
        }
        out
    }

    /// Total decoder: any malformed payload — hostile discriminant, bad
    /// length prefix, trailing bytes — is `None`, which the state
    /// machine applies as a deterministic no-op.
    pub fn decode(bytes: &[u8]) -> Option<KvOp> {
        let mut r = Reader::new(bytes);
        let op = match r.u8().ok()? {
            0 => KvOp::Put { key: take_bytes(&mut r)?, value: take_bytes(&mut r)? },
            1 => KvOp::Del { key: take_bytes(&mut r)? },
            2 => KvOp::Cas {
                key: take_bytes(&mut r)?,
                expect: take_bytes(&mut r)?,
                value: take_bytes(&mut r)?,
            },
            _ => return None,
        };
        r.finish().ok()?;
        Some(op)
    }
}

/// A deterministic seeded KV workload for one node: a put/cas/del mix
/// over a small shared key space, encoded with [`KvOp::encode`]. The
/// same `(seed, node, count)` always yields the same payloads, so runs
/// on different substrates submit byte-identical transactions — the
/// basis of the sim-vs-TCP differential tests and the `--kv-workload`
/// mode of the binaries.
pub fn seeded_workload(seed: u64, node: NodeId, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let mut x = fnv1a(FNV_OFFSET, &seed.to_le_bytes());
            x = fnv1a(x, &(node.index() as u64).to_le_bytes());
            x = fnv1a(x, &(i as u64).to_le_bytes());
            let key = format!("k{}", x % 16).into_bytes();
            let value = x.to_le_bytes().to_vec();
            match x % 4 {
                0 | 1 => KvOp::Put { key, value },
                2 => KvOp::Cas { key, expect: value.clone(), value: vec![b'c'] },
                _ => KvOp::Del { key },
            }
            .encode()
        })
        .collect()
}

/// The deterministic key-value state: the map, an FNV hash chain folded
/// over every applied slot (well-formed or not), and the apply cursor.
///
/// Two correct nodes that applied the same log prefix are byte-identical
/// here — the property the checkpoint certificates rest on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvState {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    chain: u64,
    applied_epoch: u64,
    applied_slots: u64,
}

impl KvState {
    /// The empty state at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next epoch to apply (epochs `0..applied_epoch` are folded in).
    pub fn applied_epoch(&self) -> u64 {
        self.applied_epoch
    }

    /// Total log slots folded into the chain.
    pub fn applied_slots(&self) -> u64 {
        self.applied_slots
    }

    /// The running FNV hash chain over applied slots.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The value currently bound to `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Folds one committed log slot into the state. The hash chain
    /// covers the raw `(epoch, proposer, tx)` bytes regardless of
    /// whether the payload parses, so Byzantine garbage cannot make
    /// correct nodes diverge — it just wastes a slot.
    ///
    /// Slots must arrive in log order within `applied_epoch`; the caller
    /// ([`SmrProcess`]) seals epochs with [`KvState::seal_epoch`].
    pub fn apply_slot(&mut self, entry: &LogEntry) {
        let mut h = fnv1a(self.chain, &entry.epoch.to_le_bytes());
        h = fnv1a(h, &(entry.proposer.index() as u64).to_le_bytes());
        h = fnv1a(h, &entry.tx);
        self.chain = h;
        self.applied_slots += 1;
        match KvOp::decode(&entry.tx) {
            Some(KvOp::Put { key, value }) => {
                self.map.insert(key, value);
            }
            Some(KvOp::Del { key }) => {
                self.map.remove(&key);
            }
            Some(KvOp::Cas { key, expect, value })
                if self.map.get(&key).is_some_and(|cur| *cur == expect) =>
            {
                self.map.insert(key, value);
            }
            Some(KvOp::Cas { .. }) => {}
            None => {}
        }
    }

    /// Marks the current epoch fully applied and advances the cursor.
    pub fn seal_epoch(&mut self) {
        self.applied_epoch += 1;
    }

    /// The canonical snapshot: cursor, slot count, hash chain, then the
    /// sorted key-value pairs with `u32` length prefixes. Identical
    /// states serialize byte-identically (the map iterates in key
    /// order), so the snapshot hash is a state fingerprint.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.applied_epoch);
        put_u64(&mut out, self.applied_slots);
        put_u64(&mut out, self.chain);
        put_u32(&mut out, self.map.len() as u32);
        for (k, v) in &self.map {
            put_bytes(&mut out, k);
            put_bytes(&mut out, v);
        }
        out
    }

    /// Total decoder for [`KvState::snapshot`] bytes. State transfer
    /// verifies the snapshot hash against the checkpoint certificate
    /// *before* restoring, so a `None` here means a corrupt
    /// reconstruction, not a protocol fault.
    pub fn restore(bytes: &[u8]) -> Option<KvState> {
        let mut r = Reader::new(bytes);
        let applied_epoch = r.u64().ok()?;
        let applied_slots = r.u64().ok()?;
        let chain = r.u64().ok()?;
        let count = r.u32().ok()? as usize;
        // Each entry costs at least its two 4-byte length prefixes, so a
        // count the remaining bytes cannot hold is malformed — reject
        // before looping.
        if count > r.remaining() / 8 {
            return None;
        }
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let k = take_bytes(&mut r)?;
            let v = take_bytes(&mut r)?;
            map.insert(k, v);
        }
        r.finish().ok()?;
        Some(KvState { map, chain, applied_epoch, applied_slots })
    }

    /// The state fingerprint: the snapshot hash of the current state.
    pub fn state_hash(&self) -> u64 {
        snapshot_hash(&self.snapshot())
    }
}

/// Tuning knobs for the replicated state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmrOptions {
    /// The underlying atomic-broadcast options (epoch horizon, batch
    /// size, pipeline depth, RBC kind).
    pub order: OrderOptions,
    /// Checkpoint every this many epochs. A checkpoint is also always
    /// taken at the run horizon, so a restarting node can always catch
    /// up to the final state by fetching certified snapshots.
    pub checkpoint_interval: u64,
}

impl Default for SmrOptions {
    fn default() -> Self {
        SmrOptions { order: OrderOptions::default(), checkpoint_interval: 4 }
    }
}

/// A wire message of the replicated-service layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmrMessage {
    /// An atomic-broadcast message (batch RBC or slot agreement).
    Order(OrderMessage),
    /// A checkpoint-hash RBC message; the tag is the checkpoint epoch,
    /// the payload the 8-byte state hash.
    Ckpt(RbcMuxMessage<u64, Vec<u8>>),
    /// "What is the latest certified checkpoint?" — sent by a
    /// recovering node; receivers reply with [`SmrMessage::CkptInfo`]
    /// now and after every future certification.
    CkptQuery,
    /// A peer's view of the latest certified checkpoint.
    CkptInfo {
        /// The certified checkpoint epoch.
        epoch: u64,
        /// The certified state hash.
        hash: u64,
    },
    /// "Send me your erasure-coded fragment of the snapshot at `epoch`."
    ChunkReq {
        /// The certified checkpoint epoch being fetched.
        epoch: u64,
    },
    /// One peer's Reed–Solomon fragment of a certified snapshot (the
    /// fragment at the peer's own codeword index).
    Chunk {
        /// The checkpoint epoch the snapshot covers.
        epoch: u64,
        /// The Merkle commitment the fragment verifies under.
        root: u64,
        /// The fragment itself (index, shard, inclusion proof).
        fragment: Fragment,
    },
}

impl fmt::Display for SmrMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmrMessage::Order(m) => write!(f, "order/{m}"),
            SmrMessage::Ckpt(m) => write!(f, "ckpt[e{}] from {}", m.tag, m.sender),
            SmrMessage::CkptQuery => f.write_str("ckpt-query"),
            SmrMessage::CkptInfo { epoch, hash } => write!(f, "ckpt-info[e{epoch}] {hash:016x}"),
            SmrMessage::ChunkReq { epoch } => write!(f, "chunk-req[e{epoch}]"),
            SmrMessage::Chunk { epoch, fragment, .. } => {
                write!(f, "chunk[e{epoch}]#{}", fragment.index)
            }
        }
    }
}

impl Codec for SmrMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SmrMessage::Order(m) => {
                out.push(0);
                m.encode(out);
            }
            SmrMessage::Ckpt(m) => {
                out.push(1);
                m.encode(out);
            }
            SmrMessage::CkptQuery => out.push(2),
            SmrMessage::CkptInfo { epoch, hash } => {
                out.push(3);
                put_u64(out, *epoch);
                put_u64(out, *hash);
            }
            SmrMessage::ChunkReq { epoch } => {
                out.push(4);
                put_u64(out, *epoch);
            }
            SmrMessage::Chunk { epoch, root, fragment } => {
                out.push(5);
                put_u64(out, *epoch);
                put_u64(out, *root);
                fragment.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(SmrMessage::Order(OrderMessage::decode(r)?)),
            1 => Ok(SmrMessage::Ckpt(RbcMuxMessage::decode(r)?)),
            2 => Ok(SmrMessage::CkptQuery),
            3 => Ok(SmrMessage::CkptInfo { epoch: r.u64()?, hash: r.u64()? }),
            4 => Ok(SmrMessage::ChunkReq { epoch: r.u64()? }),
            5 => Ok(SmrMessage::Chunk {
                epoch: r.u64()?,
                root: r.u64()?,
                fragment: Fragment::decode(r)?,
            }),
            got => Err(DecodeError::Invalid { what: "smr message discriminant", got: got as u64 }),
        }
    }

    fn trace_hint(&self) -> u64 {
        match self {
            SmrMessage::Order(m) => m.trace_hint(),
            _ => 0,
        }
    }
}

/// The terminal result of one node's run: the state fingerprint after
/// every epoch up to the horizon is folded in. Identical at all correct
/// nodes — whether they applied every slot live or installed certified
/// snapshots along the way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmrOutput {
    /// The final snapshot hash.
    pub state_hash: u64,
    /// Epochs folded into the state (the run horizon).
    pub epochs: u64,
    /// Live keys in the final map.
    pub keys: u64,
}

/// An in-progress snapshot fetch: the certified target and the per-peer
/// fragments collected so far (at most one per peer, keyed by sender).
struct FetchState {
    epoch: u64,
    hash: u64,
    frags: BTreeMap<NodeId, (u64, Fragment)>,
}

type SmrEffect = Effect<SmrMessage, SmrOutput>;

/// One node of the replicated key-value service, packaged as a
/// [`Process`] so it runs unmodified on all three substrates.
///
/// A fresh node starts applying from epoch 0. A *recovering* replacement
/// (see [`SmrProcess::recovering`]) instead suppresses live apply,
/// queries its peers for the latest certified checkpoint, installs it by
/// erasure-coded state transfer, and only then resumes applying — it
/// never replays epochs below the checkpoint it installed.
pub struct SmrProcess<C> {
    config: Config,
    me: NodeId,
    opts: SmrOptions,
    order: OrderProcess<C>,
    state: KvState,
    ckpt: RbcMux<u64, Vec<u8>>,
    /// Own snapshots by checkpoint epoch; pruned below the latest
    /// certificate once one exists.
    snapshots: BTreeMap<u64, Vec<u8>>,
    /// The highest boundary already proposed (or skipped by a restore).
    ckpt_cursor: u64,
    /// The latest checkpoint certificate `(epoch, hash)` this node
    /// holds, from `2f + 1` matching RBC deliveries or `f + 1` matching
    /// peer reports.
    cert: Option<(u64, u64)>,
    /// Latest `CkptInfo` per peer (for `f + 1` bootstrap certification).
    peer_info: BTreeMap<NodeId, (u64, u64)>,
    /// Peers that asked to be notified of future certifications.
    subscribers: BTreeSet<NodeId>,
    recovering: bool,
    fetch: Option<FetchState>,
    output_emitted: bool,
    obs: Obs,
    trace_on: bool,
}

impl<C: CoinScheme> SmrProcess<C> {
    /// Creates a participant whose mempool holds `workload` encoded
    /// [`KvOp`] payloads.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_interval` is zero (the order layer asserts
    /// its own knobs).
    pub fn new(
        config: Config,
        me: NodeId,
        opts: SmrOptions,
        workload: Vec<Vec<u8>>,
        coin_for: impl FnMut(u64) -> C + Send + 'static,
    ) -> Self {
        assert!(opts.checkpoint_interval >= 1, "checkpoint_interval must be at least 1");
        let order = OrderProcess::new(config, me, opts.order, workload, coin_for);
        SmrProcess {
            config,
            me,
            opts,
            order,
            state: KvState::new(),
            ckpt: RbcMux::new(config, me),
            snapshots: BTreeMap::new(),
            ckpt_cursor: 0,
            cert: None,
            peer_info: BTreeMap::new(),
            subscribers: BTreeSet::new(),
            recovering: false,
            fetch: None,
            output_emitted: false,
            obs: Obs::disabled(),
            trace_on: false,
        }
    }

    /// Marks this node a recovering replacement: it will not apply any
    /// slot until it has installed a certified checkpoint from its
    /// peers, so it provably never replays truncated history. Because a
    /// checkpoint is always taken at the run horizon, recovery always
    /// terminates.
    pub fn recovering(mut self, on: bool) -> Self {
        self.recovering = on;
        if on {
            // Span ids are deterministic in (trace, node, phase), so a
            // replacement's spans would collide with whatever its
            // pre-crash incarnation already emitted: observe events
            // only. Works in either builder order w.r.t. `with_obs`.
            self.trace_on = false;
            if self.obs.enabled() {
                self.order = self.order.with_obs(self.obs.sans_spans());
            }
        }
        self
    }

    /// Attaches an observer: state-machine lifecycle events are emitted
    /// here and ordering/RBC events at the wrapped layers. The
    /// checkpoint-hash RBC is deliberately *not* observed — its spans
    /// would collide with the batch RBC's (both derive from
    /// `(proposer, epoch)`), and its metrics would double-count the
    /// broadcast layer.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        let order_obs = if self.recovering { obs.sans_spans() } else { obs.clone() };
        self.order = self.order.with_obs(order_obs);
        self.trace_on = obs.enabled() && !self.recovering;
        self.obs = obs;
        self
    }

    /// Queues an encoded operation for ordering (see
    /// [`OrderProcess::submit`]).
    pub fn submit(&mut self, tx: Vec<u8>) -> Result<(), Backpressure> {
        self.order.submit(tx)
    }

    /// The replicated state as applied so far.
    pub fn state(&self) -> &KvState {
        &self.state
    }

    /// The latest checkpoint certificate this node holds.
    pub fn certificate(&self) -> Option<(u64, u64)> {
        self.cert
    }

    /// Epochs the order layer has fully appended.
    pub fn committed_epochs(&self) -> u64 {
        self.order.committed_epochs()
    }

    /// Ordered-log slots currently retained (bounded by the checkpoint
    /// interval once certificates flow).
    pub fn retained_log_slots(&self) -> usize {
        self.order.log().len()
    }

    /// Live RBC instances across the batch and checkpoint muxes.
    pub fn rbc_instance_count(&self) -> usize {
        self.order.rbc_instance_count() + self.ckpt.instance_count()
    }

    /// Bytes of erasure-coded fragments buffered across live RBC
    /// instances.
    pub fn rbc_fragment_bytes(&self) -> usize {
        self.order.rbc_fragment_bytes()
    }

    /// Epochs whose ACS state the order layer still retains.
    pub fn live_epochs(&self) -> usize {
        self.order.live_epochs()
    }

    /// Retained agreement-instance state across all live epochs.
    pub fn retained_aba_count(&self) -> usize {
        self.order.retained_aba_count()
    }

    /// Whether `e` is a checkpoint boundary (a positive multiple of the
    /// interval within the horizon, or the horizon itself).
    fn is_boundary(&self, e: u64) -> bool {
        let horizon = self.opts.order.epochs;
        e > 0 && e <= horizon && (e == horizon || e.is_multiple_of(self.opts.checkpoint_interval))
    }

    /// The smallest checkpoint boundary strictly above `after`.
    fn next_boundary_after(&self, after: u64) -> Option<u64> {
        let horizon = self.opts.order.epochs;
        if after >= horizon {
            return None;
        }
        let next_multiple = (after / self.opts.checkpoint_interval + 1)
            .saturating_mul(self.opts.checkpoint_interval);
        Some(next_multiple.min(horizon))
    }

    fn lift_order(
        &mut self,
        effects: Vec<Effect<OrderMessage, OrderLog>>,
        out: &mut Vec<SmrEffect>,
    ) {
        for e in effects {
            match e {
                Effect::Send { to, msg } => {
                    out.push(Effect::Send { to, msg: SmrMessage::Order(msg) });
                }
                Effect::Broadcast { msg } => {
                    out.push(Effect::Broadcast { msg: SmrMessage::Order(msg) });
                }
                // The service layer owns both the terminal output and
                // liveness: peers must stay responsive after their own
                // horizon to serve checkpoint queries and chunks.
                Effect::Output(_) | Effect::Halt => {}
            }
        }
    }

    fn lift_ckpt(&mut self, actions: Vec<RbcMuxAction<u64, Vec<u8>>>, out: &mut Vec<SmrEffect>) {
        for a in actions {
            match a {
                RbcMuxAction::Broadcast(m) => {
                    out.push(Effect::Broadcast { msg: SmrMessage::Ckpt(m) });
                }
                RbcMuxAction::Send { to, msg } => {
                    out.push(Effect::Send { to, msg: SmrMessage::Ckpt(msg) });
                }
                // Deliveries are read back from the mux when counting
                // certificates.
                RbcMuxAction::Deliver { .. } => {}
            }
        }
    }

    /// Applies every epoch the order layer has appended, sealing epochs
    /// in order and snapshotting at checkpoint boundaries.
    fn apply_committed(&mut self) {
        if self.recovering {
            return;
        }
        while self.state.applied_epoch() < self.order.committed_epochs() {
            let e = self.state.applied_epoch();
            let slots: Vec<LogEntry> =
                self.order.log().iter().filter(|s| s.epoch == e).cloned().collect();
            let mut spanned: BTreeSet<NodeId> = BTreeSet::new();
            for slot in &slots {
                self.state.apply_slot(slot);
                let (proposer, bytes) = (slot.proposer, slot.tx.len() as u64);
                self.obs.emit(self.me, || Event::SlotApplied { epoch: e, proposer, bytes });
                if self.trace_on && spanned.insert(proposer) {
                    // One instantaneous apply span per (epoch, proposer)
                    // slot group, anchored in the batch's causal trace.
                    let ctx = TraceCtx::derive(proposer, e, e);
                    self.obs.span_start(self.me, ctx, TracePhase::Apply, ctx.root);
                    self.obs.span_end(self.me, ctx, TracePhase::Apply);
                }
            }
            self.state.seal_epoch();
            let sealed = self.state.applied_epoch();
            if self.is_boundary(sealed) {
                self.snapshots.insert(sealed, self.state.snapshot());
            }
        }
    }

    /// RBC-broadcasts the state hash for every boundary the apply cursor
    /// has crossed.
    fn maybe_checkpoint(&mut self, out: &mut Vec<SmrEffect>) {
        while let Some(c) = self.next_boundary_after(self.ckpt_cursor) {
            if c > self.state.applied_epoch() {
                break;
            }
            self.ckpt_cursor = c;
            let Some(snap) = self.snapshots.get(&c) else { continue };
            let hash = snapshot_hash(snap);
            self.obs.emit(self.me, || Event::CheckpointProposed { epoch: c, hash });
            let actions = self.ckpt.broadcast(c, hash.to_le_bytes().to_vec());
            self.lift_ckpt(actions, out);
        }
    }

    /// Counts matching checkpoint-hash deliveries and adopts a
    /// certificate once `2f + 1` agree on one hash for a boundary newer
    /// than the current certificate.
    fn maybe_certify(&mut self, out: &mut Vec<SmrEffect>) {
        let need = self.config.decide_threshold();
        let floor = self.cert.map_or(0, |(e, _)| e);
        let mut counts: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        for (_, &tag, payload) in self.ckpt.deliveries() {
            if tag <= floor {
                continue;
            }
            let Ok(bytes) = <[u8; 8]>::try_from(payload.as_slice()) else { continue };
            *counts.entry((tag, u64::from_le_bytes(bytes))).or_insert(0) += 1;
        }
        let Some(((epoch, hash), support)) =
            counts.into_iter().filter(|&(_, c)| c >= need).max_by_key(|&((e, _), _)| e)
        else {
            return;
        };
        self.adopt_certificate(epoch, hash, support as u64, out);
    }

    fn adopt_certificate(&mut self, epoch: u64, hash: u64, support: u64, out: &mut Vec<SmrEffect>) {
        self.cert = Some((epoch, hash));
        self.obs.emit(self.me, || Event::CheckpointCertified { epoch, hash, support });
        if let Some(own) = self.snapshots.get(&epoch) {
            if snapshot_hash(own) != hash {
                // The cluster certified a state this node does not hold
                // — with a deterministic apply this is unreachable for a
                // correct node, so surface it instead of serving a
                // snapshot that contradicts the certificate.
                self.obs.emit(self.me, || Event::InvariantViolated {
                    round: 0,
                    detail: format!("own snapshot at epoch {epoch} contradicts certificate"),
                });
                self.snapshots.remove(&epoch);
            }
        }
        // Certified history is dead: prune snapshots and checkpoint RBC
        // state below the certificate, truncate the ordered log below
        // whatever both the certificate and the apply cursor cover.
        self.snapshots.retain(|&b, _| b >= epoch);
        self.ckpt.retain(move |_, tag| *tag >= epoch);
        for peer in self.subscribers.iter().copied().filter(|&p| p != self.me) {
            out.push(Effect::Send { to: peer, msg: SmrMessage::CkptInfo { epoch, hash } });
        }
    }

    /// Truncates the ordered log below everything both certified and
    /// applied.
    fn maybe_truncate(&mut self) {
        if let Some((epoch, _)) = self.cert {
            self.order.truncate_below(epoch.min(self.state.applied_epoch()));
        }
    }

    /// Starts (or retargets) a snapshot fetch when a certificate covers
    /// epochs this node can no longer commit live.
    fn maybe_fetch(&mut self, out: &mut Vec<SmrEffect>) {
        let Some((target, hash)) = self.best_target() else { return };
        if target <= self.state.applied_epoch() {
            return;
        }
        if !self.recovering && self.order.committed_epochs() >= target {
            // The gap is already committed locally; live apply covers it.
            return;
        }
        if self.fetch.as_ref().is_some_and(|f| f.epoch >= target) {
            return;
        }
        self.fetch = Some(FetchState { epoch: target, hash, frags: BTreeMap::new() });
        self.obs.emit(self.me, || Event::StateTransferStarted { epoch: target });
        out.push(Effect::Broadcast { msg: SmrMessage::ChunkReq { epoch: target } });
    }

    /// The newest checkpoint this node can trust: its own `2f + 1`
    /// certificate, or a boundary `f + 1` distinct peers report
    /// identically (at least one of them is correct).
    fn best_target(&self) -> Option<(u64, u64)> {
        let amplify = self.config.bv_amplify_threshold();
        let mut counts: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        for &(e, h) in self.peer_info.values() {
            *counts.entry((e, h)).or_insert(0) += 1;
        }
        let peer_best = counts
            .into_iter()
            .filter(|&(_, c)| c >= amplify)
            .map(|(eh, _)| eh)
            .max_by_key(|&(e, _)| e);
        [self.cert, peer_best].into_iter().flatten().max_by_key(|&(e, _)| e)
    }

    fn on_query(&mut self, from: NodeId, out: &mut Vec<SmrEffect>) {
        if from == self.me {
            return;
        }
        self.subscribers.insert(from);
        if let Some((epoch, hash)) = self.cert {
            out.push(Effect::Send { to: from, msg: SmrMessage::CkptInfo { epoch, hash } });
        }
    }

    fn on_info(&mut self, from: NodeId, epoch: u64, hash: u64) {
        if from == self.me || !self.is_boundary(epoch) {
            return;
        }
        let entry = self.peer_info.entry(from).or_insert((epoch, hash));
        if epoch >= entry.0 {
            *entry = (epoch, hash);
        }
    }

    fn on_chunk_req(&mut self, from: NodeId, epoch: u64, out: &mut Vec<SmrEffect>) {
        if from == self.me {
            return;
        }
        self.subscribers.insert(from);
        let Some((ce, ch)) = self.cert else { return };
        if epoch != ce {
            // Stale target — point the requester at the newest
            // certificate instead.
            out.push(Effect::Send { to: from, msg: SmrMessage::CkptInfo { epoch: ce, hash: ch } });
            return;
        }
        let Some(snap) = self.snapshots.get(&ce) else { return };
        let (n, k) = (self.config.n(), self.config.reconstruct_threshold());
        let Ok(coded) = ec_encode(snap, n, k) else { return };
        let Some(fragment) = coded.fragments.into_iter().nth(self.me.index()) else { return };
        out.push(Effect::Send {
            to: from,
            msg: SmrMessage::Chunk { epoch, root: coded.root, fragment },
        });
    }

    fn on_chunk(
        &mut self,
        from: NodeId,
        epoch: u64,
        root: u64,
        fragment: &Fragment,
        out: &mut Vec<SmrEffect>,
    ) {
        let (n, k) = (self.config.n(), self.config.reconstruct_threshold());
        let installed = {
            let Some(fetch) = self.fetch.as_mut() else { return };
            if fetch.epoch != epoch
                || fragment.index as usize != from.index()
                || !ec_verify(root, n, k, fragment)
            {
                return;
            }
            fetch.frags.insert(from, (root, fragment.clone()));
            // Group collected fragments by claimed root; the first root
            // with k fragments whose reconstruction matches the
            // certified hash wins. A Byzantine peer lying about the root
            // only isolates its own fragment in a group that can never
            // both reconstruct and match the certificate.
            let roots: BTreeSet<u64> = fetch.frags.values().map(|&(r, _)| r).collect();
            let mut found = None;
            for r in roots {
                let frags: Vec<Fragment> = fetch
                    .frags
                    .values()
                    .filter(|&&(fr, _)| fr == r)
                    .map(|(_, f)| f.clone())
                    .collect();
                if frags.len() < k {
                    continue;
                }
                let Ok(bytes) = ec_reconstruct(r, n, k, &frags) else { continue };
                if snapshot_hash(&bytes) != fetch.hash {
                    continue;
                }
                let Some(state) = KvState::restore(&bytes) else { continue };
                if state.applied_epoch() != fetch.epoch {
                    continue;
                }
                found = Some((state, bytes));
                break;
            }
            found
        };
        let Some((state, bytes)) = installed else { return };
        let target = epoch;
        let size = bytes.len() as u64;
        self.fetch = None;
        self.state = state;
        self.recovering = false;
        self.snapshots.insert(target, bytes);
        self.ckpt_cursor = self.ckpt_cursor.max(target);
        let effects = self.order.fast_forward(target);
        self.lift_order(effects, out);
        self.obs.emit(self.me, || Event::StateTransferCompleted { epoch: target, bytes: size });
    }

    fn maybe_output(&mut self, out: &mut Vec<SmrEffect>) {
        if !self.output_emitted && self.state.applied_epoch() >= self.opts.order.epochs {
            self.output_emitted = true;
            out.push(Effect::Output(self.snapshot_output()));
        }
    }

    fn snapshot_output(&self) -> SmrOutput {
        SmrOutput {
            state_hash: self.state.state_hash(),
            epochs: self.state.applied_epoch(),
            keys: self.state.len() as u64,
        }
    }

    /// Drives apply, checkpointing, certification, fetch and truncation
    /// after any batch of order effects or service messages.
    fn advance(&mut self, out: &mut Vec<SmrEffect>) {
        self.apply_committed();
        self.maybe_checkpoint(out);
        self.maybe_certify(out);
        self.maybe_fetch(out);
        self.maybe_truncate();
        self.maybe_output(out);
    }
}

impl<C> fmt::Debug for SmrProcess<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmrProcess")
            .field("me", &self.me)
            .field("applied_epoch", &self.state.applied_epoch())
            .field("applied_slots", &self.state.applied_slots())
            .field("cert", &self.cert)
            .field("recovering", &self.recovering)
            .finish_non_exhaustive()
    }
}

impl<C: CoinScheme> Process for SmrProcess<C> {
    type Msg = SmrMessage;
    type Output = SmrOutput;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self) -> Vec<SmrEffect> {
        let mut out = Vec::new();
        if self.recovering {
            out.push(Effect::Broadcast { msg: SmrMessage::CkptQuery });
        }
        let effects = self.order.on_start();
        self.lift_order(effects, &mut out);
        self.advance(&mut out);
        out
    }

    fn on_message(&mut self, from: NodeId, msg: &SmrMessage) -> Vec<SmrEffect> {
        let mut out = Vec::new();
        match msg {
            SmrMessage::Order(m) => {
                let effects = self.order.on_message(from, m);
                self.lift_order(effects, &mut out);
            }
            SmrMessage::Ckpt(m) => {
                // Only valid boundaries may allocate checkpoint-RBC
                // state — a Byzantine tag must not grow the mux.
                if self.is_boundary(m.tag) {
                    let actions = self.ckpt.on_message(from, m);
                    self.lift_ckpt(actions, &mut out);
                }
            }
            SmrMessage::CkptQuery => self.on_query(from, &mut out),
            SmrMessage::CkptInfo { epoch, hash } => self.on_info(from, *epoch, *hash),
            SmrMessage::ChunkReq { epoch } => self.on_chunk_req(from, *epoch, &mut out),
            SmrMessage::Chunk { epoch, root, fragment } => {
                self.on_chunk(from, *epoch, *root, fragment, &mut out);
            }
        }
        self.advance(&mut out);
        out
    }

    fn output(&self) -> Option<SmrOutput> {
        if self.output_emitted {
            Some(self.snapshot_output())
        } else {
            None
        }
    }

    fn is_halted(&self) -> bool {
        // Never: a node that halted could not serve checkpoint queries
        // or snapshot chunks to a recovering peer. Substrates end runs
        // on output completion, not halts.
        false
    }

    fn round(&self) -> u64 {
        self.order.round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::CommonCoin;
    use bft_sim::{UniformDelay, World, WorldConfig};

    fn entry(epoch: u64, proposer: usize, tx: Vec<u8>) -> LogEntry {
        LogEntry { epoch, proposer: NodeId::new(proposer), tx }
    }

    #[test]
    fn kv_op_codec_round_trips_and_rejects_garbage() {
        let ops = [
            KvOp::Put { key: b"k".to_vec(), value: b"v".to_vec() },
            KvOp::Del { key: Vec::new() },
            KvOp::Cas { key: b"k".to_vec(), expect: b"v".to_vec(), value: vec![0; 300] },
        ];
        for op in ops {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(KvOp::decode(&[]), None);
        assert_eq!(KvOp::decode(&[9]), None);
        // Hostile length prefix far beyond the buffer.
        let mut bad = vec![1];
        put_u32(&mut bad, u32::MAX);
        assert_eq!(KvOp::decode(&bad), None);
        // Trailing garbage after a well-formed op.
        let mut trailing = KvOp::Del { key: b"k".to_vec() }.encode();
        trailing.push(0);
        assert_eq!(KvOp::decode(&trailing), None);
    }

    #[test]
    fn apply_is_deterministic_and_malformed_slots_are_hash_only_noops() {
        let slots = vec![
            entry(0, 0, KvOp::Put { key: b"a".to_vec(), value: b"1".to_vec() }.encode()),
            entry(0, 1, vec![0xff, 0xee]), // malformed: must not diverge
            entry(
                0,
                2,
                KvOp::Cas { key: b"a".to_vec(), expect: b"1".to_vec(), value: b"2".to_vec() }
                    .encode(),
            ),
            entry(
                0,
                3,
                KvOp::Cas { key: b"a".to_vec(), expect: b"9".to_vec(), value: b"3".to_vec() }
                    .encode(),
            ),
            entry(0, 3, KvOp::Del { key: b"gone".to_vec() }.encode()),
        ];
        let mut a = KvState::new();
        let mut b = KvState::new();
        for s in &slots {
            a.apply_slot(s);
            b.apply_slot(s);
        }
        a.seal_epoch();
        b.seal_epoch();
        assert_eq!(a, b);
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a.get(b"a"), Some(b"2".as_slice()), "cas applies only on match");
        assert_eq!(a.applied_slots(), 5, "malformed slots still consume the chain");
        // Dropping the malformed slot changes the chain: the hash covers
        // raw bytes, not just well-formed ops.
        let mut c = KvState::new();
        for s in slots.iter().filter(|s| KvOp::decode(&s.tx).is_some()) {
            c.apply_slot(s);
        }
        c.seal_epoch();
        assert_ne!(a.state_hash(), c.state_hash());
    }

    #[test]
    fn snapshot_restore_round_trips_and_rejects_corruption() {
        let mut s = KvState::new();
        for i in 0..10u8 {
            s.apply_slot(&entry(0, 0, KvOp::Put { key: vec![i], value: vec![i, i] }.encode()));
        }
        s.seal_epoch();
        let snap = s.snapshot();
        assert_eq!(KvState::restore(&snap), Some(s.clone()));
        assert_eq!(snapshot_hash(&snap), s.state_hash());
        assert_eq!(KvState::restore(&snap[..snap.len() - 1]), None, "truncated");
        let mut trailing = snap.clone();
        trailing.push(0);
        assert_eq!(KvState::restore(&trailing), None, "trailing bytes");
        // Hostile entry count.
        let mut hostile = Vec::new();
        put_u64(&mut hostile, 1);
        put_u64(&mut hostile, 1);
        put_u64(&mut hostile, 7);
        put_u32(&mut hostile, u32::MAX);
        assert_eq!(KvState::restore(&hostile), None);
    }

    #[test]
    fn smr_message_codec_round_trips_and_rejects_bad_discriminants() {
        let msgs = [
            SmrMessage::CkptQuery,
            SmrMessage::CkptInfo { epoch: 8, hash: 0xdead_beef },
            SmrMessage::ChunkReq { epoch: 4 },
            SmrMessage::Chunk {
                epoch: 4,
                root: 99,
                fragment: Fragment {
                    index: 2,
                    total_len: 32,
                    shard: vec![1, 2, 3],
                    proof: vec![5, 6],
                },
            },
        ];
        for m in msgs {
            assert_eq!(SmrMessage::from_bytes(&m.to_bytes()), Ok(m));
        }
        assert!(matches!(
            SmrMessage::from_bytes(&[9]),
            Err(DecodeError::Invalid { what: "smr message discriminant", .. })
        ));
    }

    fn kv_workload(id: NodeId, count: usize) -> Vec<Vec<u8>> {
        (0..count)
            .map(|i| {
                let key = vec![b'k', (i % 5) as u8];
                match (id.index() + i) % 3 {
                    0 => KvOp::Put { key, value: vec![id.index() as u8, i as u8] }.encode(),
                    1 => KvOp::Cas { key, expect: vec![id.index() as u8, i as u8], value: vec![7] }
                        .encode(),
                    _ => KvOp::Del { key }.encode(),
                }
            })
            .collect()
    }

    #[test]
    fn sim_cluster_agrees_on_state_and_certifies_checkpoints() {
        let Ok(cfg) = Config::new(4, 1) else { return };
        let opts = SmrOptions {
            order: OrderOptions {
                batch_max: 2,
                pipeline_depth: 2,
                epochs: 6,
                ..OrderOptions::default()
            },
            checkpoint_interval: 2,
        };
        let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 9, 11));
        for id in cfg.nodes() {
            world.add_process(Box::new(SmrProcess::new(cfg, id, opts, kv_workload(id, 12), |i| {
                CommonCoin::new(3, i)
            })));
        }
        let report = world.run();
        assert!(report.all_correct_decided(), "all nodes must output");
        assert!(report.agreement_holds(), "state hashes must match");
        let output = report.unanimous_output().expect("unanimous output");
        assert_eq!(output.epochs, 6);
    }

    #[test]
    fn crashed_node_recovers_by_state_transfer_without_replaying_truncated_history() {
        use bft_obs::VecSink;
        use bft_sim::SimTime;

        let Ok(cfg) = Config::new(4, 1) else { return };
        let opts = SmrOptions {
            order: OrderOptions {
                batch_max: 2,
                pipeline_depth: 2,
                epochs: 8,
                ..OrderOptions::default()
            },
            checkpoint_interval: 2,
        };
        let crash_at = 30;
        let restart_at = 400;
        let victim = NodeId::new(3);
        let (obs, sink) = Obs::new(VecSink::new());
        let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 9, 21));
        for id in cfg.nodes() {
            world.add_process(Box::new(
                SmrProcess::new(cfg, id, opts, kv_workload(id, 16), |i| CommonCoin::new(3, i))
                    .with_obs(obs.clone()),
            ));
        }
        world.schedule_crash(victim, SimTime::from_ticks(crash_at));
        let obs_replacement = obs.clone();
        world.schedule_restart(
            victim,
            SimTime::from_ticks(restart_at),
            Box::new(move || {
                Box::new(
                    SmrProcess::new(cfg, victim, opts, kv_workload(victim, 16), |i| {
                        CommonCoin::new(3, i)
                    })
                    .recovering(true)
                    .with_obs(obs_replacement),
                )
            }),
        );
        let report = world.run();
        assert!(report.all_correct_decided(), "the restarted node must catch up and output");
        assert!(report.agreement_holds(), "recovered state must match the cluster");

        let events = sink.lock().take();
        let transfers: Vec<u64> = events
            .iter()
            .filter(|(_, node, _)| *node == victim)
            .filter_map(|(_, _, e)| match e {
                Event::StateTransferCompleted { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        assert!(!transfers.is_empty(), "recovery must go through peer state transfer");
        let first_fetched = transfers[0];
        assert!(first_fetched >= opts.checkpoint_interval, "must land on a certified boundary");
        // The replacement never replays epochs below the checkpoint it
        // installed: every slot it applies is at or above it.
        let replayed: Vec<u64> = events
            .iter()
            .filter(|(at, node, _)| *node == victim && *at >= restart_at)
            .filter_map(|(_, _, e)| match e {
                Event::SlotApplied { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .filter(|&e| e < first_fetched)
            .collect();
        assert!(replayed.is_empty(), "replayed truncated epochs: {replayed:?}");
    }
}
