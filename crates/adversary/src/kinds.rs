//! A catalogue of Byzantine behaviours for the experiment matrix.

use crate::{CrashAfter, LyingBracha, Mutator, Silent};
use bft_coin::LocalCoin;
use bft_types::{Config, NodeId, Process, Value};
use bracha::{BrachaOptions, BrachaProcess, Wire};

/// The fault classes exercised by experiment T1's matrix (and reused by
/// T2/T5/T8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Participate correctly, then crash after handling `after` events.
    Crash {
        /// Events handled before the crash.
        after: u64,
    },
    /// Never send anything.
    Mute,
    /// Run the protocol but flip every originated value.
    FlipValue,
    /// Run the protocol but randomise every originated value.
    RandomValue,
    /// Run the protocol but forge a D-flag on every Ready.
    AlwaysFlag,
    /// Run the protocol but see-saw the originated value with round
    /// parity.
    Seesaw,
}

impl FaultKind {
    /// All kinds, for iterating the experiment matrix.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Crash { after: 40 },
        FaultKind::Mute,
        FaultKind::FlipValue,
        FaultKind::RandomValue,
        FaultKind::AlwaysFlag,
        FaultKind::Seesaw,
    ];

    /// Short label for experiment tables.
    pub fn describe(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Mute => "mute",
            FaultKind::FlipValue => "flip-value",
            FaultKind::RandomValue => "random-value",
            FaultKind::AlwaysFlag => "always-flag",
            FaultKind::Seesaw => "seesaw",
        }
    }
}

/// Builds a Byzantine participant of the Bracha consensus wire protocol.
///
/// `seed` feeds any randomness the behaviour needs; `input` is the value
/// the (corrupted) node starts from.
///
/// # Example
///
/// ```
/// use bft_adversary::{make_bracha_adversary, FaultKind};
/// use bft_types::{Config, NodeId, Value};
///
/// # fn main() -> Result<(), bft_types::ConfigError> {
/// let cfg = Config::new(4, 1)?;
/// let evil = make_bracha_adversary(FaultKind::Mute, cfg, NodeId::new(3), Value::Zero, 7);
/// assert_eq!(evil.id(), NodeId::new(3));
/// # Ok(())
/// # }
/// ```
pub fn make_bracha_adversary(
    kind: FaultKind,
    config: Config,
    id: NodeId,
    input: Value,
    seed: u64,
) -> Box<dyn Process<Msg = Wire, Output = Value> + Send> {
    let coin = LocalCoin::new(seed ^ 0xdead_beef, id);
    match kind {
        FaultKind::Crash { after } => {
            // Correct behaviour that stops mid-protocol.
            let inner = BrachaProcess::new(config, id, input, coin, BrachaOptions::default());
            Box::new(CrashAfter::new(inner, after))
        }
        FaultKind::Mute => Box::new(Silent::new(id)),
        FaultKind::FlipValue => {
            Box::new(LyingBracha::new(config, id, input, coin, Mutator::FlipValue))
        }
        FaultKind::RandomValue => Box::new(LyingBracha::new(
            config,
            id,
            input,
            coin,
            Mutator::random(seed.wrapping_mul(0x9e37_79b9)),
        )),
        FaultKind::AlwaysFlag => {
            Box::new(LyingBracha::new(config, id, input, coin, Mutator::AlwaysFlag))
        }
        FaultKind::Seesaw => Box::new(LyingBracha::new(config, id, input, coin, Mutator::Seesaw)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::LocalCoin;
    use bft_sim::{UniformDelay, World, WorldConfig};

    /// The T1 matrix in miniature: every fault kind, at full strength
    /// (f = max), must leave agreement + validity + termination intact.
    #[test]
    fn every_fault_kind_is_tolerated_at_full_strength() {
        for kind in FaultKind::ALL {
            for seed in 0..5 {
                let n = 7;
                let cfg = Config::max_resilience(n).unwrap();
                let f = cfg.f();
                let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
                for id in cfg.nodes() {
                    if id.index() < f {
                        world.add_faulty_process(make_bracha_adversary(
                            kind,
                            cfg,
                            id,
                            Value::One, // liars corrupt from the correct value
                            seed,
                        ));
                    } else {
                        // All correct nodes share input One → validity
                        // pins the decision.
                        world.add_process(Box::new(BrachaProcess::new(
                            cfg,
                            id,
                            Value::One,
                            LocalCoin::new(seed, id),
                            BrachaOptions::default(),
                        )));
                    }
                }
                let report = world.run();
                assert!(
                    report.all_correct_decided(),
                    "{}: termination failed (seed {seed})",
                    kind.describe()
                );
                assert_eq!(
                    report.unanimous_output(),
                    Some(Value::One),
                    "{}: agreement/validity failed (seed {seed})",
                    kind.describe()
                );
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            FaultKind::ALL.iter().map(|k| k.describe()).collect();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }
}
