//! The double-talking attack on protocols without reliable broadcast.

use bft_types::{Effect, NodeId, Process, Round, Value};
use bracha::benor::BenOrMessage;
use std::collections::BTreeSet;

/// A Byzantine participant in **Ben-Or's** protocol that tells each half
/// of the network a different story: `Report(r, 1)` and `Proposal(r, 1)`
/// to nodes `0..n/2`, the `0`-versions to the rest, every round.
///
/// This is the attack that pins Ben-Or's resilience at `n > 5f` — and the
/// attack that Bracha's reliable broadcast makes *impossible by
/// construction* (a node physically cannot deliver two different payloads
/// for the same instance). Experiment T5 runs both protocols against it.
///
/// The double-talker is reactive: it emits its round-`r` lies the first
/// time it sees any round-`r` message, so it keeps pace with whatever
/// round the correct nodes are in.
#[derive(Clone, Debug)]
pub struct DoubleTalker {
    config: bft_types::Config,
    id: NodeId,
    lied_in: BTreeSet<Round>,
}

impl DoubleTalker {
    /// Creates the double-talker.
    pub fn new(config: bft_types::Config, id: NodeId) -> Self {
        DoubleTalker { config, id, lied_in: BTreeSet::new() }
    }

    fn lies_for(&mut self, round: Round) -> Vec<Effect<BenOrMessage, Value>> {
        if !self.lied_in.insert(round) {
            return Vec::new();
        }
        let half = self.config.n() / 2;
        let mut out = Vec::new();
        for to in self.config.nodes() {
            let v = if to.index() < half { Value::One } else { Value::Zero };
            out.push(Effect::Send { to, msg: BenOrMessage::Report { round, value: v } });
            out.push(Effect::Send { to, msg: BenOrMessage::Proposal { round, value: Some(v) } });
        }
        out
    }
}

impl Process for DoubleTalker {
    type Msg = BenOrMessage;
    type Output = Value;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<Effect<BenOrMessage, Value>> {
        self.lies_for(Round::FIRST)
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: &BenOrMessage,
    ) -> Vec<Effect<BenOrMessage, Value>> {
        self.lies_for(msg.round())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::LocalCoin;
    use bft_sim::{UniformDelay, World, WorldConfig};
    use bft_types::Config;
    use bracha::benor::BenOrProcess;

    /// Within Ben-Or's resilience bound (n > 5f) the double-talker is
    /// harmless.
    #[test]
    fn benor_survives_double_talk_below_its_bound() {
        for seed in 0..10 {
            let n = 6; // f = 1, n > 5f ✓
            let cfg = Config::new(n, 1).unwrap();
            let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 15, seed));
            for id in cfg.nodes() {
                if id.index() == n - 1 {
                    world.add_faulty_process(Box::new(DoubleTalker::new(cfg, id)));
                } else {
                    let input = if id.index() % 2 == 0 { Value::One } else { Value::Zero };
                    world.add_process(Box::new(BenOrProcess::new(
                        cfg,
                        id,
                        input,
                        LocalCoin::new(seed, id),
                        2_000,
                    )));
                }
            }
            let report = world.run();
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn double_talker_lies_once_per_round() {
        let cfg = Config::new(6, 1).unwrap();
        let mut dt = DoubleTalker::new(cfg, NodeId::new(5));
        let first = dt.on_start();
        assert_eq!(first.len(), 2 * 6, "report + proposal per node");
        // Round 1 again: silent.
        let again = dt.on_message(
            NodeId::new(0),
            &BenOrMessage::Report { round: Round::FIRST, value: Value::One },
        );
        assert!(again.is_empty());
        // A round-2 message elicits fresh lies.
        let r2 = dt.on_message(
            NodeId::new(0),
            &BenOrMessage::Report { round: Round::new(2), value: Value::One },
        );
        assert_eq!(r2.len(), 12);
    }

    #[test]
    fn lies_are_value_split_by_half() {
        let cfg = Config::new(4, 1).unwrap();
        let mut dt = DoubleTalker::new(cfg, NodeId::new(3));
        for e in dt.on_start() {
            if let Effect::Send { to, msg: BenOrMessage::Report { value, .. } } = e {
                let expect = if to.index() < 2 { Value::One } else { Value::Zero };
                assert_eq!(value, expect);
            }
        }
    }
}
