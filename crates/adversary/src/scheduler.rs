//! Content-aware adversarial schedulers (the asynchrony half of the
//! adversary).

use bft_sim::{Scheduler, SimTime};
use bft_types::Envelope;
use bracha::Wire;

/// The anti-coin scheduler: inspects consensus values in flight and
/// delivers each value quickly to "its" half of the nodes and slowly to
/// the other half, trying to keep the two halves' quorums disagreeing so
/// that no value ever reaches a majority lock.
///
/// Against *local* coins this measurably inflates the round count
/// (experiment F3); against a *common* coin it is powerless (F4) — which
/// is exactly the paper's narrative arc.
#[derive(Clone, Debug)]
pub struct SplitDelay {
    /// Nodes with index < `boundary` form group A (fed `One` quickly).
    boundary: usize,
    fast: u64,
    slow: u64,
}

impl SplitDelay {
    /// Creates the scheduler with the given group boundary and delays.
    ///
    /// # Panics
    ///
    /// Panics if `fast > slow` (the attack would be inverted).
    pub fn new(boundary: usize, fast: u64, slow: u64) -> Self {
        assert!(fast <= slow, "fast delay must not exceed slow delay");
        SplitDelay { boundary, fast, slow }
    }
}

impl Scheduler<Wire> for SplitDelay {
    fn delay(&mut self, envelope: &Envelope<Wire>, _now: SimTime) -> u64 {
        // ABA wire messages always carry a step payload (the coded RBC
        // variants never appear on this layer); treat any stray as Zero.
        let value_is_one =
            envelope.msg.msg.payload().map(|p| p.value()) == Some(bft_types::Value::One);
        let to_group_a = envelope.to.index() < self.boundary;
        // Group A is fed One-messages fast, Zero-messages slow; group B
        // the other way round. First-quorum sets then skew per group.
        if value_is_one == to_group_a {
            self.fast
        } else {
            self.slow
        }
    }
}

/// Starves one node: everything addressed to `victim` is delayed by
/// `slow`, everything else delivered after `fast`. Consensus must still
/// terminate (the victim is simply treated like an omitted node until its
/// messages catch up) — a liveness stressor used by the integration
/// tests.
#[derive(Clone, Copy, Debug)]
pub struct LaggardDelay {
    victim: usize,
    fast: u64,
    slow: u64,
}

impl LaggardDelay {
    /// Creates the scheduler starving node `victim`.
    pub fn new(victim: usize, fast: u64, slow: u64) -> Self {
        LaggardDelay { victim, fast, slow }
    }
}

impl<M> Scheduler<M> for LaggardDelay {
    fn delay(&mut self, envelope: &Envelope<M>, _now: SimTime) -> u64 {
        if envelope.to.index() == self.victim || envelope.from.index() == self.victim {
            self.slow
        } else {
            self.fast
        }
    }
}

/// Favours the traffic of a set of (presumably Byzantine) senders:
/// messages from nodes with index < `favored_below` are delivered after
/// `fast` ticks, everything else after `slow`. This maximises the chance
/// that the favoured nodes' payloads land inside every correct node's
/// first quorum — the delivery pattern that makes lying most effective
/// (used by the T8 validation ablation).
#[derive(Clone, Copy, Debug)]
pub struct FavorSenders {
    favored_below: usize,
    fast: u64,
    slow: u64,
}

impl FavorSenders {
    /// Creates the scheduler favouring senders `0..favored_below`.
    pub fn new(favored_below: usize, fast: u64, slow: u64) -> Self {
        FavorSenders { favored_below, fast, slow }
    }
}

impl<M> Scheduler<M> for FavorSenders {
    fn delay(&mut self, envelope: &Envelope<M>, _now: SimTime) -> u64 {
        if envelope.from.index() < self.favored_below {
            self.fast
        } else {
            self.slow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::{CommonCoin, LocalCoin};
    use bft_sim::{World, WorldConfig};
    use bft_types::{Config, NodeId, Value};
    use bracha::{BrachaOptions, BrachaProcess};

    fn run_split(n: usize, coin_common: bool, seed: u64) -> bft_sim::Report<Value> {
        let cfg = Config::max_resilience(n).unwrap();
        let mut world = World::new(WorldConfig::new(n), SplitDelay::new(n / 2, 1, 8));
        for id in cfg.nodes() {
            // Inputs split along the scheduler's boundary: worst case.
            let input = if id.index() < n / 2 { Value::One } else { Value::Zero };
            if coin_common {
                world.add_process(Box::new(BrachaProcess::new(
                    cfg,
                    id,
                    input,
                    CommonCoin::new(seed, 0),
                    BrachaOptions::default(),
                )));
            } else {
                world.add_process(Box::new(BrachaProcess::new(
                    cfg,
                    id,
                    input,
                    LocalCoin::new(seed, id),
                    BrachaOptions::default(),
                )));
            }
        }
        world.run()
    }

    /// Safety and probability-1 termination hold even under the anti-coin
    /// scheduler (it can slow the protocol, not stop or corrupt it).
    #[test]
    fn split_scheduler_cannot_break_safety_or_liveness() {
        for seed in 0..10 {
            let report = run_split(4, false, seed);
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.agreement_holds(), "seed {seed}");
        }
    }

    /// With a common coin the split scheduler loses its leverage: rounds
    /// stay small.
    #[test]
    fn common_coin_defeats_the_split_scheduler() {
        let mut max_rounds = 0;
        for seed in 0..10 {
            let report = run_split(7, true, seed);
            assert!(report.all_correct_decided(), "seed {seed}");
            max_rounds = max_rounds.max(report.decision_round().unwrap());
        }
        assert!(
            max_rounds <= 6,
            "common coin should decide in few rounds, worst seen {max_rounds}"
        );
    }

    #[test]
    fn laggard_delay_targets_the_victim() {
        let mut s = LaggardDelay::new(2, 1, 50);
        let env = |from: usize, to: usize| Envelope::new(NodeId::new(from), NodeId::new(to), 0u8);
        assert_eq!(Scheduler::<u8>::delay(&mut s, &env(0, 2), SimTime::ZERO), 50);
        assert_eq!(Scheduler::<u8>::delay(&mut s, &env(2, 0), SimTime::ZERO), 50);
        assert_eq!(Scheduler::<u8>::delay(&mut s, &env(0, 1), SimTime::ZERO), 1);
    }

    #[test]
    fn consensus_survives_a_starved_node() {
        let cfg = Config::new(4, 1).unwrap();
        let mut world = World::new(WorldConfig::new(4), LaggardDelay::new(3, 1, 100));
        for id in cfg.nodes() {
            let input = if id.index() % 2 == 0 { Value::One } else { Value::Zero };
            world.add_process(Box::new(BrachaProcess::new(
                cfg,
                id,
                input,
                LocalCoin::new(9, id),
                BrachaOptions::default(),
            )));
        }
        let report = world.run();
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
    }

    #[test]
    #[should_panic(expected = "fast delay")]
    fn split_delay_rejects_inverted_delays() {
        let _ = SplitDelay::new(2, 10, 1);
    }
}
