//! Byzantine node behaviours and adversarial schedulers.
//!
//! The paper's fault model gives the adversary two powers:
//!
//! 1. **Corrupt up to `f` nodes**, which may then behave arbitrarily. A
//!    faulty node here is simply another [`Process`](bft_types::Process)
//!    implementation that
//!    does not follow the protocol — this crate supplies a zoo of them,
//!    from simple crash/omission faults to protocol-aware liars that run
//!    the real state machine and corrupt its outgoing payloads.
//! 2. **Schedule all messages** (asynchrony), including inspecting their
//!    contents. The [`SplitDelay`] scheduler is the classic anti-coin
//!    adversary: it looks at consensus values in flight and delays
//!    messages so as to keep the correct nodes' quorums disagreeing for
//!    as long as possible.
//!
//! Everything is deterministic given its seed, so "the adversary got
//! lucky" is a reproducible event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generic;
mod kinds;
mod lying;
mod mmr_attacks;
mod rbc_attacks;
mod scheduler;
mod two_faced;

pub use generic::{CrashAfter, Silent};
pub use kinds::{make_bracha_adversary, FaultKind};
pub use lying::{LyingBracha, Mutator};
pub use mmr_attacks::MmrSaboteur;
pub use rbc_attacks::RbcEquivocator;
pub use scheduler::{FavorSenders, LaggardDelay, SplitDelay};
pub use two_faced::DoubleTalker;

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::Value;

    #[test]
    fn fault_kind_catalogue_is_exposed() {
        // Compile-time sanity that the public surface is wired up.
        let kinds = [
            FaultKind::Crash { after: 3 },
            FaultKind::Mute,
            FaultKind::FlipValue,
            FaultKind::RandomValue,
            FaultKind::AlwaysFlag,
            FaultKind::Seesaw,
        ];
        assert_eq!(kinds.len(), 6);
        let _ = Mutator::FlipValue.describe();
        let _ = Value::Zero;
    }
}
