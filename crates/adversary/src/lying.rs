//! Protocol-aware liars for Bracha's consensus.
//!
//! The strongest realistic adversary runs the *real* protocol state
//! machine (so its messages are well-formed and timely) but corrupts the
//! payloads it originates. Because all consensus payloads travel by
//! reliable broadcast, the liar cannot equivocate — but it can try to
//! inject values, fake D-flags, or see-saw between values to stall
//! termination. Bracha's validation layer is exactly what defuses these
//! attacks; the T8 ablation shows what happens without it.

use bft_coin::CoinScheme;
use bft_rbc::RbcMessage;
use bft_types::{Effect, NodeId, Process, Value};
use bracha::{BrachaNode, BrachaOptions, StepPayload, StepTag, Transition, Wire};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How a [`LyingBracha`] corrupts the payloads it originates.
// The RandomValue variant carries a ChaCha state (~136 bytes); mutators
// are created once per adversary, so the size imbalance is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Mutator {
    /// Flip every value (send `1` where the protocol says `0`).
    FlipValue,
    /// Replace every value with a seeded random one.
    RandomValue(ChaCha8Rng),
    /// Claim a D-flag on every Ready payload (a forged lock). Validation
    /// rejects the forgery unless the value really had an echo majority.
    AlwaysFlag,
    /// Send the round's parity as the value — a see-saw that tries to keep
    /// the correct nodes split forever.
    Seesaw,
}

impl Mutator {
    /// A seeded random-value mutator.
    pub fn random(seed: u64) -> Self {
        Mutator::RandomValue(ChaCha8Rng::seed_from_u64(seed))
    }

    /// Short label for experiment tables.
    pub fn describe(&self) -> &'static str {
        match self {
            Mutator::FlipValue => "flip-value",
            Mutator::RandomValue(_) => "random-value",
            Mutator::AlwaysFlag => "always-flag",
            Mutator::Seesaw => "seesaw",
        }
    }

    /// Applies the corruption to an outgoing payload.
    pub fn apply(&mut self, tag: StepTag, payload: StepPayload) -> StepPayload {
        let lie = |value: Value, mutator: &mut Mutator| -> Value {
            match mutator {
                Mutator::FlipValue => value.flipped(),
                Mutator::RandomValue(rng) => Value::from_bool(rng.gen()),
                Mutator::AlwaysFlag => value,
                Mutator::Seesaw => Value::from_bit((tag.round.get() % 2) as u8),
            }
        };
        match payload {
            StepPayload::Initial(v) => StepPayload::Initial(lie(v, self)),
            StepPayload::Echo(v) => StepPayload::Echo(lie(v, self)),
            StepPayload::Ready { value, flagged } => {
                let flagged = flagged || matches!(self, Mutator::AlwaysFlag);
                StepPayload::Ready { value: lie(value, self), flagged }
            }
        }
    }
}

/// A Byzantine consensus participant: runs a genuine [`BrachaNode`] but
/// corrupts every payload it originates according to a [`Mutator`].
///
/// The corruption happens on the node's own reliable-broadcast `Send`
/// messages, so the lie is *consistent* — every peer (and the liar's own
/// state machine) sees the same corrupted payload. This is the strongest
/// form of lying available under reliable broadcast.
#[derive(Clone, Debug)]
pub struct LyingBracha<C> {
    node: BrachaNode<C>,
    mutator: Mutator,
    input: Value,
}

impl<C: CoinScheme> LyingBracha<C> {
    /// Creates the liar. `input` seeds its (soon to be corrupted) run.
    pub fn new(
        config: bft_types::Config,
        me: NodeId,
        input: Value,
        coin: C,
        mutator: Mutator,
    ) -> Self {
        LyingBracha {
            node: BrachaNode::new(config, me, coin, BrachaOptions::default()),
            mutator,
            input,
        }
    }

    fn corrupt(&mut self, transitions: Vec<Transition>) -> Vec<Effect<Wire, Value>> {
        let me = self.node.me();
        transitions
            .into_iter()
            .filter_map(|t| match t {
                Transition::Broadcast(mut wire) => {
                    // Only corrupt payloads we *originate* (our own RBC
                    // Send); Echo/Ready for other instances must stay
                    // faithful or our support would simply be discarded.
                    if wire.sender == me {
                        if let RbcMessage::Send(p) = wire.msg {
                            wire.msg = RbcMessage::Send(self.mutator.apply(wire.tag, p));
                        }
                    }
                    Some(Effect::Broadcast { msg: wire })
                }
                // A liar's "decision" is not a protocol output.
                Transition::Decide(_) => None,
                Transition::Halt => Some(Effect::Halt),
            })
            .collect()
    }
}

impl<C: CoinScheme> Process for LyingBracha<C> {
    type Msg = Wire;
    type Output = Value;

    fn id(&self) -> NodeId {
        self.node.me()
    }

    fn on_start(&mut self) -> Vec<Effect<Wire, Value>> {
        let ts = self.node.start(self.input);
        self.corrupt(ts)
    }

    fn on_message(&mut self, from: NodeId, msg: &Wire) -> Vec<Effect<Wire, Value>> {
        let ts = self.node.on_message(from, msg);
        self.corrupt(ts)
    }

    fn is_halted(&self) -> bool {
        self.node.is_halted()
    }

    fn round(&self) -> u64 {
        self.node.round().get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::{FixedCoin, LocalCoin};
    use bft_sim::{UniformDelay, World, WorldConfig};
    use bft_types::{Config, Round, Step};
    use bracha::BrachaProcess;

    #[test]
    fn mutators_corrupt_as_documented() {
        let tag = StepTag::new(Round::new(2), Step::Initial);
        let mut flip = Mutator::FlipValue;
        assert_eq!(
            flip.apply(tag, StepPayload::Initial(Value::One)),
            StepPayload::Initial(Value::Zero)
        );

        let mut seesaw = Mutator::Seesaw;
        assert_eq!(
            seesaw.apply(tag, StepPayload::Echo(Value::One)),
            StepPayload::Echo(Value::Zero),
            "round 2 parity is 0"
        );

        let mut flagger = Mutator::AlwaysFlag;
        assert_eq!(
            flagger.apply(tag, StepPayload::Ready { value: Value::One, flagged: false }),
            StepPayload::Ready { value: Value::One, flagged: true }
        );

        let mut rng_a = Mutator::random(5);
        let mut rng_b = Mutator::random(5);
        for _ in 0..10 {
            assert_eq!(
                rng_a.apply(tag, StepPayload::Initial(Value::One)),
                rng_b.apply(tag, StepPayload::Initial(Value::One)),
                "random mutator must be reproducible"
            );
        }
    }

    /// The headline safety test: f protocol-aware liars of every stripe
    /// cannot break agreement or validity.
    #[test]
    fn liars_cannot_break_agreement_or_validity() {
        for (seed, mutator) in [
            (1u64, Mutator::FlipValue),
            (2, Mutator::random(99)),
            (3, Mutator::AlwaysFlag),
            (4, Mutator::Seesaw),
        ] {
            let cfg = Config::new(7, 2).unwrap();
            let mut world = World::new(WorldConfig::new(7), UniformDelay::new(1, 25, seed));
            for id in cfg.nodes() {
                if id.index() < 2 {
                    world.add_faulty_process(Box::new(LyingBracha::new(
                        cfg,
                        id,
                        Value::One, // mutators corrupt from here (flip ⇒ push 0)
                        FixedCoin::new(Value::Zero),
                        mutator.clone(),
                    )));
                } else {
                    // All correct nodes hold One: validity demands the
                    // decision be One regardless of the liars.
                    world.add_process(Box::new(BrachaProcess::new(
                        cfg,
                        id,
                        Value::One,
                        LocalCoin::new(seed, id),
                        BrachaOptions::default(),
                    )));
                }
            }
            let report = world.run();
            assert!(
                report.all_correct_decided(),
                "{}: all correct must decide (seed {seed})",
                mutator.describe()
            );
            assert_eq!(
                report.unanimous_output(),
                Some(Value::One),
                "{}: validity must hold (seed {seed})",
                mutator.describe()
            );
        }
    }

    /// Contrast test for the ablation: with validation disabled, two
    /// value-flipping liars plus a scheduler that favours their messages
    /// CAN break the protocol's guarantees — correct nodes that all start
    /// with One either fail to terminate or decide Zero (a validity
    /// violation). With validation on (previous test) the same adversary
    /// is harmless: the liars' `Echo(0)` is unjustifiable and never
    /// accepted.
    #[test]
    fn without_validation_liars_can_break_the_protocol() {
        use bft_sim::FnScheduler;
        use bft_types::Envelope;
        use rand::Rng as _;

        let mut violated = false;
        for seed in 0..30u64 {
            let cfg = Config::new(7, 2).unwrap();
            // Liar traffic (from nodes 0 and 1) is fast; correct traffic is
            // slow and jittered, so liar payloads land in every quorum.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let sched =
                FnScheduler::new(
                    move |env: &Envelope<Wire>, _now| {
                        if env.from.index() < 2 {
                            1
                        } else {
                            rng.gen_range(5..40)
                        }
                    },
                );
            let mut world = World::new(WorldConfig::new(7), sched);
            let opts =
                BrachaOptions { validate: false, max_rounds: 60, ..BrachaOptions::default() };
            for id in cfg.nodes() {
                if id.index() < 2 {
                    world.add_faulty_process(Box::new(LyingBracha::new(
                        cfg,
                        id,
                        Value::One, // flipped on the wire: the liars push 0
                        FixedCoin::new(Value::Zero),
                        Mutator::FlipValue,
                    )));
                } else {
                    world.add_process(Box::new(BrachaProcess::new(
                        cfg,
                        id,
                        Value::One,
                        LocalCoin::new(seed, id),
                        opts,
                    )));
                }
            }
            let report = world.run();
            let ok = report.all_correct_decided()
                && report.agreement_holds()
                && report.unanimous_output() == Some(Value::One);
            if !ok {
                violated = true;
                break;
            }
        }
        assert!(violated, "validation-off ablation should be breakable by value-flipping liars");
    }
}
