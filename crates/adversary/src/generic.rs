//! Protocol-agnostic fault wrappers.

use bft_types::{Effect, NodeId, Process};
use std::fmt;
use std::marker::PhantomData;

/// A node that never sends anything — a crash at time zero (equivalently,
/// a fully omissive node).
///
/// Generic over the protocol's message/output types, so it slots into any
/// world.
///
/// # Example
///
/// ```
/// use bft_adversary::Silent;
/// use bft_types::{NodeId, Process};
///
/// let mut node: Silent<String, u8> = Silent::new(NodeId::new(3));
/// assert!(node.on_start().is_empty());
/// assert!(node.on_message(NodeId::new(0), &"hi".to_string()).is_empty());
/// ```
pub struct Silent<M, O> {
    id: NodeId,
    _types: PhantomData<fn() -> (M, O)>,
}

impl<M, O> Silent<M, O> {
    /// Creates a silent node.
    pub fn new(id: NodeId) -> Self {
        Silent { id, _types: PhantomData }
    }
}

impl<M, O> fmt::Debug for Silent<M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Silent({})", self.id)
    }
}

impl<M, O> Process for Silent<M, O>
where
    M: Clone + fmt::Debug,
    O: Clone + fmt::Debug,
{
    type Msg = M;
    type Output = O;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<Effect<M, O>> {
        Vec::new()
    }

    fn on_message(&mut self, _from: NodeId, _msg: &M) -> Vec<Effect<M, O>> {
        Vec::new()
    }
}

/// Runs the wrapped (correct) process faithfully for a budget of events,
/// then crashes — the classic mid-protocol crash fault.
///
/// The budget counts handled events (`on_start` plus deliveries). With
/// `after = 0` the node crashes before taking a single step.
///
/// # Example
///
/// ```
/// use bft_adversary::{CrashAfter, Silent};
/// use bft_types::{NodeId, Process};
///
/// // Wrap any process; here a trivially silent one.
/// let inner: Silent<u8, u8> = Silent::new(NodeId::new(1));
/// let mut node = CrashAfter::new(inner, 0); // crash before the first step
/// let effects = node.on_start();
/// assert!(node.is_halted());
/// ```
#[derive(Clone, Debug)]
pub struct CrashAfter<P> {
    inner: P,
    remaining: u64,
    crashed: bool,
}

impl<P: Process> CrashAfter<P> {
    /// Wraps `inner`, crashing it after `after` handled events.
    pub fn new(inner: P, after: u64) -> Self {
        CrashAfter { inner, remaining: after, crashed: false }
    }

    /// Whether the crash has occurred.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    fn spend(&mut self) -> bool {
        if self.crashed {
            return false;
        }
        if self.remaining == 0 {
            self.crashed = true;
            return false;
        }
        self.remaining -= 1;
        true
    }
}

impl<P: Process> Process for CrashAfter<P> {
    type Msg = P::Msg;
    type Output = P::Output;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn on_start(&mut self) -> Vec<Effect<P::Msg, P::Output>> {
        if !self.spend() {
            return vec![Effect::Halt];
        }
        self.inner.on_start()
    }

    fn on_message(&mut self, from: NodeId, msg: &P::Msg) -> Vec<Effect<P::Msg, P::Output>> {
        if !self.spend() {
            return vec![Effect::Halt];
        }
        self.inner.on_message(from, msg)
    }

    fn output(&self) -> Option<P::Output> {
        self.inner.output()
    }

    fn is_halted(&self) -> bool {
        self.crashed || self.inner.is_halted()
    }

    fn round(&self) -> u64 {
        self.inner.round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chatty process for wrapping.
    #[derive(Clone, Debug)]
    struct Chatty {
        id: NodeId,
        sent: u32,
    }

    impl Process for Chatty {
        type Msg = u32;
        type Output = u32;
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_start(&mut self) -> Vec<Effect<u32, u32>> {
            self.sent += 1;
            vec![Effect::Broadcast { msg: self.sent }]
        }
        fn on_message(&mut self, _f: NodeId, _m: &u32) -> Vec<Effect<u32, u32>> {
            self.sent += 1;
            vec![Effect::Broadcast { msg: self.sent }]
        }
        fn round(&self) -> u64 {
            self.sent as u64
        }
    }

    #[test]
    fn silent_says_nothing() {
        let mut s: Silent<u32, u32> = Silent::new(NodeId::new(0));
        assert_eq!(s.id(), NodeId::new(0));
        assert!(s.on_start().is_empty());
        assert!(s.on_message(NodeId::new(1), &5).is_empty());
        assert!(!s.is_halted());
        assert_eq!(s.output(), None);
    }

    #[test]
    fn crash_after_budget_is_respected() {
        let mut c = CrashAfter::new(Chatty { id: NodeId::new(2), sent: 0 }, 2);
        assert_eq!(c.on_start().len(), 1);
        assert!(!c.crashed());
        assert_eq!(c.on_message(NodeId::new(0), &9).len(), 1);
        // Budget exhausted: third event crashes.
        let effects = c.on_message(NodeId::new(0), &9);
        assert_eq!(effects, vec![Effect::Halt]);
        assert!(c.crashed());
        assert!(c.is_halted());
        // Subsequent events produce nothing further.
        assert_eq!(c.on_message(NodeId::new(0), &9), vec![Effect::Halt]);
    }

    #[test]
    fn crash_at_zero_never_speaks() {
        let mut c = CrashAfter::new(Chatty { id: NodeId::new(2), sent: 0 }, 0);
        assert_eq!(c.on_start(), vec![Effect::Halt]);
        assert!(c.crashed());
    }

    #[test]
    fn delegation_passes_metadata_through() {
        let c = CrashAfter::new(Chatty { id: NodeId::new(7), sent: 3 }, 10);
        assert_eq!(c.id(), NodeId::new(7));
        assert_eq!(c.round(), 3);
    }
}
