//! Attacks on the reliable-broadcast primitive itself (experiment T4).

use bft_rbc::RbcMessage;
use bft_types::{Effect, NodeId, Process};
use std::fmt;
use std::hash::Hash;

/// A Byzantine *designated sender* that equivocates: it sends payload `a`
/// to the first half of the nodes and payload `b` to the rest, then plays
/// along with the Echo/Ready phases of whichever payload it hears about
/// first.
///
/// Bracha's reliable broadcast guarantees that despite this, no two
/// correct nodes deliver different payloads — either one payload reaches
/// the Echo quorum `⌈(n+f+1)/2⌉` and wins everywhere, or nobody delivers.
///
/// # Example
///
/// ```
/// use bft_adversary::RbcEquivocator;
/// use bft_types::{Config, NodeId, Process};
///
/// # fn main() -> Result<(), bft_types::ConfigError> {
/// let cfg = Config::new(4, 1)?;
/// let mut evil = RbcEquivocator::new(cfg, NodeId::new(0), "a", "b");
/// let effects = evil.on_start();
/// assert_eq!(effects.len(), 4, "one targeted Send per node");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RbcEquivocator<P> {
    config: bft_types::Config,
    id: NodeId,
    payload_a: P,
    payload_b: P,
    echoed: bool,
}

impl<P> RbcEquivocator<P>
where
    P: Clone + Eq + Hash + fmt::Debug,
{
    /// Creates the equivocating sender.
    pub fn new(config: bft_types::Config, id: NodeId, payload_a: P, payload_b: P) -> Self {
        RbcEquivocator { config, id, payload_a, payload_b, echoed: false }
    }
}

impl<P> Process for RbcEquivocator<P>
where
    P: Clone + Eq + Hash + fmt::Debug,
{
    type Msg = RbcMessage<P>;
    type Output = P;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<Effect<RbcMessage<P>, P>> {
        let half = self.config.n() / 2;
        self.config
            .nodes()
            .map(|to| {
                let payload =
                    if to.index() < half { self.payload_a.clone() } else { self.payload_b.clone() };
                Effect::Send { to, msg: RbcMessage::Send(payload) }
            })
            .collect()
    }

    fn on_message(&mut self, _from: NodeId, msg: &RbcMessage<P>) -> Vec<Effect<RbcMessage<P>, P>> {
        // Support whichever payload the network is converging on, once —
        // enough participation to look alive, not enough to help totality.
        if let RbcMessage::Echo(p) = msg {
            if !self.echoed {
                self.echoed = true;
                return vec![Effect::Broadcast { msg: RbcMessage::Echo(p.clone()) }];
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_rbc::RbcProcess;
    use bft_sim::{StopReason, UniformDelay, World, WorldConfig};
    use bft_types::Config;

    /// The T4 headline: an equivocating sender can never make two correct
    /// nodes deliver different payloads, across many schedules.
    #[test]
    fn equivocation_never_splits_delivery() {
        for seed in 0..30 {
            let cfg = Config::new(4, 1).unwrap();
            let sender = NodeId::new(0);
            let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 20, seed));
            world.add_faulty_process(Box::new(RbcEquivocator::new(cfg, sender, "a", "b")));
            for id in cfg.nodes().skip(1) {
                world.add_process(Box::new(RbcProcess::<&str>::new(cfg, id, sender, None)));
            }
            let report = world.run();
            // Agreement: whatever was delivered, it is unanimous.
            assert!(report.agreement_holds(), "seed {seed}: split delivery!");
            // All-or-none can legitimately end in "none" (queue drains
            // undelivered); both outcomes are allowed, splits are not.
            assert!(
                matches!(report.stop, StopReason::Completed | StopReason::QueueDrained),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn equivocator_targets_halves() {
        let cfg = Config::new(6, 1).unwrap();
        let mut evil = RbcEquivocator::new(cfg, NodeId::new(0), 1u8, 2u8);
        let effects = evil.on_start();
        let mut a_targets = Vec::new();
        let mut b_targets = Vec::new();
        for e in effects {
            if let Effect::Send { to, msg: RbcMessage::Send(p) } = e {
                if p == 1 {
                    a_targets.push(to.index());
                } else {
                    b_targets.push(to.index());
                }
            }
        }
        assert_eq!(a_targets, vec![0, 1, 2]);
        assert_eq!(b_targets, vec![3, 4, 5]);
    }
}
