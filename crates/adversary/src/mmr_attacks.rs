//! Attacks on the MMR-style modern ABA (`bracha::mmr`).

use bft_types::{Effect, NodeId, Process, Round, Value};
use bracha::mmr::MmrMessage;
use rand::Rng;
use rand_chacha::{rand_core::SeedableRng, ChaCha8Rng};
use std::collections::BTreeSet;

/// A Byzantine MMR participant throwing everything it has: both `BVAL`
/// values every round (to pollute `bin_values`), a random `AUX`, and a
/// forged `Finish` on a value of its choosing (trying to trick the
/// `f + 1` adoption threshold of the termination gadget).
///
/// With at most `f` such nodes, none of it works: BVAL needs `f + 1`
/// supporters to propagate and `2f + 1` to be accepted; AUX values not in
/// `bin_values` are ignored; and `f` forged Finishes never reach the
/// `f + 1` adoption bar.
#[derive(Clone, Debug)]
pub struct MmrSaboteur {
    id: NodeId,
    forged_value: Value,
    rng: ChaCha8Rng,
    lied_in: BTreeSet<Round>,
    finish_sent: bool,
}

impl MmrSaboteur {
    /// Creates the saboteur; it forges `Finish(forged_value)` and floods
    /// rounds with conflicting votes.
    pub fn new(id: NodeId, forged_value: Value, seed: u64) -> Self {
        MmrSaboteur {
            id,
            forged_value,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5ab0_7a9e),
            lied_in: BTreeSet::new(),
            finish_sent: false,
        }
    }

    fn flood(&mut self, round: Round) -> Vec<Effect<MmrMessage, Value>> {
        if !self.lied_in.insert(round) {
            return Vec::new();
        }
        let mut out = vec![
            Effect::Broadcast { msg: MmrMessage::Bval { round, value: Value::Zero } },
            Effect::Broadcast { msg: MmrMessage::Bval { round, value: Value::One } },
            Effect::Broadcast {
                msg: MmrMessage::Aux { round, value: Value::from_bool(self.rng.gen()) },
            },
        ];
        if !self.finish_sent {
            self.finish_sent = true;
            out.push(Effect::Broadcast { msg: MmrMessage::Finish { value: self.forged_value } });
        }
        out
    }
}

impl Process for MmrSaboteur {
    type Msg = MmrMessage;
    type Output = Value;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<Effect<MmrMessage, Value>> {
        self.flood(Round::FIRST)
    }

    fn on_message(&mut self, _from: NodeId, msg: &MmrMessage) -> Vec<Effect<MmrMessage, Value>> {
        self.flood(msg.round())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::CommonCoin;
    use bft_sim::{UniformDelay, World, WorldConfig};
    use bft_types::Config;
    use bracha::mmr::MmrProcess;

    /// f saboteurs forging Finish(0) against a unanimous-One cluster:
    /// validity and agreement must survive.
    #[test]
    fn saboteurs_cannot_forge_decisions() {
        for seed in 0..10 {
            let n = 7;
            let cfg = Config::new(n, 2).unwrap();
            let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
            for id in cfg.nodes() {
                if id.index() < 2 {
                    world.add_faulty_process(Box::new(MmrSaboteur::new(id, Value::Zero, seed)));
                } else {
                    world.add_process(Box::new(MmrProcess::new(
                        cfg,
                        id,
                        Value::One,
                        CommonCoin::new(seed, 0),
                        10_000,
                    )));
                }
            }
            let report = world.run();
            assert!(report.all_correct_decided(), "seed {seed}: termination");
            assert_eq!(
                report.unanimous_output(),
                Some(Value::One),
                "seed {seed}: forged Finish must not flip validity"
            );
        }
    }

    #[test]
    fn saboteur_floods_once_per_round() {
        let mut s = MmrSaboteur::new(NodeId::new(6), Value::Zero, 1);
        let first = s.on_start();
        assert_eq!(first.len(), 4, "2 bvals + aux + finish");
        assert!(s
            .on_message(
                NodeId::new(0),
                &MmrMessage::Bval { round: Round::FIRST, value: Value::One }
            )
            .is_empty());
        let r2 = s.on_message(
            NodeId::new(0),
            &MmrMessage::Bval { round: Round::new(2), value: Value::One },
        );
        assert_eq!(r2.len(), 3, "finish already sent; 2 bvals + aux remain");
    }
}
