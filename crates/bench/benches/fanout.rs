//! Criterion bench for the simulator's broadcast fan-out hot path — the
//! per-recipient cost of `Effect::Broadcast` with a heap payload. Backs
//! the `fanout_ns_per_msg` figure recorded into `BENCH_bracha.json`.

use bft_bench::hotpath;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_fanout");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| hotpath::fanout_ns_per_msg(n, 5_000));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
