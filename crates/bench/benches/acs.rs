//! Criterion bench backing T6: wall-clock cost of an asynchronous common
//! subset (the HoneyBadger-style batch-agreement core).

use bft_coin::CommonCoin;
use bft_sim::{UniformDelay, World, WorldConfig};
use bft_types::Config;
use bracha::acs::AcsProcess;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_acs(c: &mut Criterion) {
    let mut group = c.benchmark_group("acs_round");
    group.sample_size(10);
    for n in [4usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let cfg = Config::max_resilience(n).unwrap();
                let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 10, seed));
                for id in cfg.nodes() {
                    let proposal = vec![id.index() as u8; 64];
                    let coins = (0..n).map(|i| CommonCoin::new(seed, i as u64)).collect();
                    world.add_process(Box::new(AcsProcess::new(cfg, id, proposal, coins)));
                }
                let report = world.run();
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_acs);
criterion_main!(benches);
