//! Criterion bench backing T8: throughput of the validation engine (the
//! per-message overhead Bracha's discipline adds).

use bft_types::{Config, NodeId, Round, Value};
use bracha::validation::Validator;
use bracha::StepPayload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Ingest a full round of messages from n nodes (initial + echo + ready),
/// with and without legality enforcement.
fn bench_ingest_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("validator_ingest_round");
    for (label, enforce) in [("validated", true), ("unchecked", false)] {
        for n in [4usize, 16, 64] {
            let cfg = Config::max_resilience(n).unwrap();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let mut val = Validator::new(cfg, enforce);
                    for i in 0..n {
                        let _ = val.ingest(
                            Round::FIRST,
                            NodeId::new(i),
                            StepPayload::Initial(Value::One),
                        );
                    }
                    for i in 0..n {
                        let _ =
                            val.ingest(Round::FIRST, NodeId::new(i), StepPayload::Echo(Value::One));
                    }
                    for i in 0..n {
                        let _ = val.ingest(
                            Round::FIRST,
                            NodeId::new(i),
                            StepPayload::Ready { value: Value::One, flagged: true },
                        );
                    }
                });
            });
        }
    }
    group.finish();
}

/// Worst-case buffering: everything arrives in reverse step order, so
/// every message is pended and released by the cascade.
fn bench_ingest_reversed(c: &mut Criterion) {
    let mut group = c.benchmark_group("validator_ingest_reversed");
    for n in [4usize, 16, 64] {
        let cfg = Config::max_resilience(n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut val = Validator::new(cfg, true);
                for i in 0..n {
                    let _ = val.ingest(
                        Round::FIRST,
                        NodeId::new(i),
                        StepPayload::Ready { value: Value::One, flagged: true },
                    );
                }
                for i in 0..n {
                    let _ = val.ingest(Round::FIRST, NodeId::new(i), StepPayload::Echo(Value::One));
                }
                for i in 0..n {
                    let _ =
                        val.ingest(Round::FIRST, NodeId::new(i), StepPayload::Initial(Value::One));
                }
            });
        });
    }
    group.finish();
}

/// Sustained multi-round ingest via the shared hotpath routines — the
/// exact code whose ns/msg figures land in `BENCH_bracha.json`.
fn bench_ingest_sustained(c: &mut Criterion) {
    let mut group = c.benchmark_group("validator_ingest_sustained");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("in_order", n), &n, |b, &n| {
            b.iter(|| bft_bench::hotpath::validator_ingest_ns_per_msg(n, 200));
        });
        group.bench_with_input(BenchmarkId::new("reversed", n), &n, |b, &n| {
            b.iter(|| bft_bench::hotpath::validator_pending_ns_per_msg(n, 200));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest_round, bench_ingest_reversed, bench_ingest_sustained);
criterion_main!(benches);
