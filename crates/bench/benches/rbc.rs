//! Criterion bench backing experiments T3/T4: wall-clock cost of one
//! reliable-broadcast instance (state machine and full simulation).

use bft_rbc::{RbcInstance, RbcMessage, RbcProcess};
use bft_sim::{FixedDelay, World, WorldConfig};
use bft_types::{Config, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Raw state-machine throughput: drive one instance to delivery by hand.
fn bench_state_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbc_state_machine");
    for n in [4usize, 16, 64] {
        let cfg = Config::max_resilience(n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut inst = RbcInstance::new(cfg, NodeId::new(1), NodeId::new(0));
                let _ = inst.on_message(NodeId::new(0), &RbcMessage::Send("m"));
                for i in 0..n {
                    let _ = inst.on_message(NodeId::new(i), &RbcMessage::Echo("m"));
                }
                for i in 0..n {
                    let _ = inst.on_message(NodeId::new(i), &RbcMessage::Ready("m"));
                }
                assert!(inst.delivered().is_some());
            });
        });
    }
    group.finish();
}

/// Full simulated broadcast to delivery at all nodes (the T3 cost curve).
fn bench_full_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbc_full_broadcast");
    group.sample_size(20);
    for n in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let cfg = Config::max_resilience(n).unwrap();
                let sender = NodeId::new(0);
                let mut world = World::new(WorldConfig::new(n), FixedDelay::new(1));
                for id in cfg.nodes() {
                    let payload = (id == sender).then(|| "payload".to_string());
                    world.add_process(Box::new(RbcProcess::new(cfg, id, sender, payload)));
                }
                let report = world.run();
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_state_machine, bench_full_broadcast);
criterion_main!(benches);
