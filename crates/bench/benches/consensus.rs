//! Criterion bench backing experiments T1/F2/F3: wall-clock cost of a
//! full consensus decision under the simulator, local vs common coin,
//! benign vs adversarial schedule.

use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_decision_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_decision_local_coin");
    group.sample_size(15);
    for n in [4usize, 7, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let report = Cluster::new(n)
                    .unwrap()
                    .seed(seed)
                    .split_inputs(n / 2)
                    .coin(CoinChoice::Local)
                    .schedule(Schedule::Uniform { min: 1, max: 20 })
                    .run();
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

fn bench_decision_common(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_decision_common_coin");
    group.sample_size(15);
    for n in [4usize, 7, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let report = Cluster::new(n)
                    .unwrap()
                    .seed(seed)
                    .split_inputs(n / 2)
                    .coin(CoinChoice::Common)
                    .schedule(Schedule::Split { fast: 1, slow: 8 })
                    .run();
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

fn bench_decision_with_liars(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_decision_with_liars");
    group.sample_size(15);
    let n = 7;
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let report = Cluster::new(n)
                .unwrap()
                .seed(seed)
                .coin(CoinChoice::Local)
                .faults(2, FaultKind::FlipValue)
                .run();
            assert!(report.all_correct_decided());
        });
    });
    group.finish();
}

/// T9's wall-clock counterpart: the modern MMR ABA vs Bracha at equal n.
fn bench_decision_mmr(c: &mut Criterion) {
    use bft_coin::CommonCoin;
    use bft_sim::{UniformDelay, World, WorldConfig};
    use bft_types::{Config, Value};
    use bracha::mmr::MmrProcess;

    let mut group = c.benchmark_group("consensus_decision_mmr");
    group.sample_size(15);
    for n in [4usize, 7, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let cfg = Config::max_resilience(n).unwrap();
                let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
                for id in cfg.nodes() {
                    let input = Value::from_bool(id.index() < n / 2);
                    world.add_process(Box::new(MmrProcess::new(
                        cfg,
                        id,
                        input,
                        CommonCoin::new(seed, 0),
                        10_000,
                    )));
                }
                let report = world.run();
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decision_local,
    bench_decision_common,
    bench_decision_with_liars,
    bench_decision_mmr
);
criterion_main!(benches);
