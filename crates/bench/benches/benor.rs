//! Criterion bench backing T5: wall-clock cost of a Ben-Or decision
//! (the baseline's lighter O(n²)-per-round message load vs its weaker
//! resilience).

use bft_bench::common::run_benor;
use bft_types::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_benor_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("benor_decision");
    group.sample_size(15);
    for n in [6usize, 11, 16] {
        let f = (n - 1) / 5;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let report = run_benor(n, f, 0, Value::One, seed, 1_000);
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_benor_decision);
criterion_main!(benches);
