//! T4 — reliable-broadcast properties under a Byzantine sender:
//! agreement and totality survive equivocation; a silent sender yields
//! nothing (validity binds only for correct senders).

use crate::common::{ExperimentReport, Mode, Tally};
use bft_adversary::{RbcEquivocator, Silent};
use bft_rbc::{RbcMessage, RbcProcess};
use bft_sim::{Report, UniformDelay, World, WorldConfig};
use bft_stats::Table;
use bft_types::{Config, NodeId};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sender {
    Correct,
    Equivocating,
    Silent,
}

impl Sender {
    fn describe(self) -> &'static str {
        match self {
            Sender::Correct => "correct",
            Sender::Equivocating => "equivocating",
            Sender::Silent => "silent",
        }
    }
}

fn run_rbc(n: usize, sender_kind: Sender, seed: u64) -> Report<String> {
    let cfg = Config::max_resilience(n).expect("n >= 1");
    let sender = NodeId::new(0);
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
    match sender_kind {
        Sender::Correct => world.add_process(Box::new(RbcProcess::new(
            cfg,
            sender,
            sender,
            Some("payload".to_string()),
        ))),
        Sender::Equivocating => world.add_faulty_process(Box::new(RbcEquivocator::new(
            cfg,
            sender,
            "payload-a".to_string(),
            "payload-b".to_string(),
        ))),
        Sender::Silent => {
            world.add_faulty_process(Box::new(Silent::<RbcMessage<String>, String>::new(sender)))
        }
    }
    for id in cfg.nodes().skip(1) {
        world.add_process(Box::new(RbcProcess::<String>::new(cfg, id, sender, None)));
    }
    world.run()
}

/// Runs the T4 matrix.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(15, 60);
    let sizes = match mode {
        Mode::Quick => vec![4usize, 7],
        Mode::Full => vec![4, 7, 10, 13],
    };

    let mut table = Table::new(vec![
        "n",
        "sender",
        "runs",
        "all delivered",
        "none delivered",
        "partial (totality violation)",
        "split (agreement violation)",
        "mean msgs",
    ]);

    for &n in &sizes {
        for sender_kind in [Sender::Correct, Sender::Equivocating, Sender::Silent] {
            let (mut all, mut none, mut partial, mut split) = (0usize, 0usize, 0usize, 0usize);
            let mut msgs = bft_stats::Samples::new();
            for seed in 0..seeds as u64 {
                let report = run_rbc(n, sender_kind, seed);
                msgs.add(report.metrics.sent as f64);
                let deciders =
                    report.correct.iter().filter(|id| report.outputs.contains_key(id)).count();
                if !report.agreement_holds() {
                    split += 1;
                } else if deciders == report.correct.len() {
                    all += 1;
                } else if deciders == 0 {
                    none += 1;
                } else {
                    partial += 1;
                }
            }
            table.row(vec![
                n.to_string(),
                sender_kind.describe().to_string(),
                seeds.to_string(),
                Tally::pct(all, seeds),
                Tally::pct(none, seeds),
                Tally::pct(partial, seeds),
                Tally::pct(split, seeds),
                format!("{:.0}", msgs.mean()),
            ]);
        }
    }

    ExperimentReport {
        id: "T4",
        title: "reliable broadcast under a Byzantine sender".into(),
        claim: "validity for correct senders; agreement and totality always (all-or-none, one \
                value)"
            .into(),
        table,
        notes: "expected shape: correct sender → 100% all-delivered; any sender → 0% partial \
                and 0% split"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_split_or_partial_outcomes_ever() {
        let report = run(Mode::Quick);
        for line in report.table.render().lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            // last two percentage columns before mean msgs are partial/split
            let partial = cells[cells.len() - 3];
            let split = cells[cells.len() - 2];
            assert_eq!(partial, "0%", "totality violated: {line}");
            assert_eq!(split, "0%", "agreement violated: {line}");
        }
    }
}
