//! T2 — tightness of the resilience bound: with `3f ≥ n` actual Byzantine
//! nodes the protocol loses its guarantees, while `n = 3f + 1` keeps them.

use crate::common::{ExperimentReport, Mode, Tally};
use async_bft::types::{Config, Value};
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
use bft_stats::Table;
use bracha::BrachaOptions;

/// Runs the T2 boundary scan.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(5, 25);
    // (n, f): pairs straddling the bound. n = 3f is beyond it; n = 3f + 1
    // exactly on it.
    let cells: Vec<(usize, usize)> = vec![(7, 2), (6, 2), (10, 3), (9, 3)];

    let mut table =
        Table::new(vec!["n", "f", "within bound", "terminated", "agreement", "validity"]);

    for (n, f) in cells {
        let within = n >= 3 * f + 1;
        let mut tally = Tally::default();
        for seed in 0..seeds as u64 {
            let config = Config::new_unchecked_resilience(n, f).expect("f < n");
            let report = Cluster::with_config(config)
                .seed(seed)
                .coin(CoinChoice::Local)
                // Favour the liars so their payloads dominate quorums —
                // the strongest schedule for the attack.
                .schedule(Schedule::FavorFaulty { favored: f, fast: 1, slow: 15 })
                .faults(f, FaultKind::FlipValue)
                .options(BrachaOptions { max_rounds: 30, ..BrachaOptions::default() })
                .max_delivered(400_000)
                .run();
            tally.add(&report, Some(Value::One));
        }
        table.row(vec![
            n.to_string(),
            f.to_string(),
            if within { "yes" } else { "NO" }.to_string(),
            tally.term_pct(),
            tally.agree_pct(),
            tally.valid_pct(),
        ]);
    }

    ExperimentReport {
        id: "T2",
        title: "the n ≥ 3f + 1 bound is tight".into(),
        claim: "beyond the bound (n = 3f) some guarantee fails; at the bound all hold".into(),
        table,
        notes: "expected shape: 'yes' rows perfect; 'NO' rows lose termination and/or validity"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_bound_rows_are_perfect_and_beyond_rows_are_not() {
        let report = run(Mode::Quick);
        let rendered = report.table.render();
        let mut saw_beyond_failure = false;
        for line in rendered.lines().skip(2) {
            if line.contains("yes") {
                assert_eq!(line.matches("100%").count(), 3, "within-bound row failed: {line}");
            } else if line.matches("100%").count() < 3 {
                saw_beyond_failure = true;
            }
        }
        assert!(saw_beyond_failure, "some beyond-bound row must fail:\n{rendered}");
    }
}
