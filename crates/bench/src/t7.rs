//! T7 — communication cost per decision, broken down by message kind
//! (`<rbc phase>/<consensus step>`).

use crate::common::{ExperimentReport, Mode};
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
use bft_stats::Table;

/// Runs the T7 breakdown.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(5, 20);
    let n = 7;

    // Aggregate per-kind counts across seeds.
    let mut agg: std::collections::BTreeMap<&'static str, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut total_msgs = 0u64;
    let mut total_bytes = 0u64;
    for seed in 0..seeds as u64 {
        let report = Cluster::new(n)
            .expect("n >= 1")
            .seed(seed)
            .split_inputs(4)
            .coin(CoinChoice::Local)
            .schedule(Schedule::Uniform { min: 1, max: 20 })
            .fault(0, FaultKind::Crash { after: 40 })
            .run();
        for (kind, &(count, bytes)) in &report.metrics.by_kind {
            let slot = agg.entry(kind).or_insert((0, 0));
            slot.0 += count;
            slot.1 += bytes;
        }
        total_msgs += report.metrics.sent;
        total_bytes += report.metrics.bytes_sent;
    }

    let mut table = Table::new(vec!["message kind", "msgs/decision", "bytes/decision"]);
    for (kind, (count, bytes)) in agg {
        table.row(vec![
            kind.to_string(),
            format!("{:.0}", count as f64 / seeds as f64),
            format!("{:.0}", bytes as f64 / seeds as f64),
        ]);
    }
    table.row(vec![
        "TOTAL".into(),
        format!("{:.0}", total_msgs as f64 / seeds as f64),
        format!("{:.0}", total_bytes as f64 / seeds as f64),
    ]);

    ExperimentReport {
        id: "T7",
        title: format!("communication cost per decision (n = {n}, one crash fault)"),
        claim: "the echo phase of RBC dominates the O(n³) cost".into(),
        table,
        notes: "expected shape: echo/* and ready/* rows ≈ n× the send/* rows".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_contains_all_phases_and_total() {
        let report = run(Mode::Quick);
        let rendered = report.table.render();
        for needle in ["send/initial", "echo/initial", "ready/ready", "TOTAL"] {
            assert!(rendered.contains(needle), "missing {needle} in:\n{rendered}");
        }
    }
}
