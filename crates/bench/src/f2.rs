//! F2 — expected rounds vs system size: local coins pay for scale, a
//! common coin does not (the paper's common-coin observation).

use crate::common::{ExperimentReport, Mode};
use async_bft::{Cluster, CoinChoice, Schedule};
use bft_stats::{Samples, Table};

fn mean_rounds(n: usize, coin: CoinChoice, seeds: usize) -> (Samples, usize) {
    let mut rounds = Samples::new();
    let mut undecided = 0usize;
    for seed in 0..seeds as u64 {
        let report = Cluster::new(n)
            .expect("n >= 1")
            .seed(seed)
            .split_inputs(n / 2)
            .coin(coin)
            // The anti-coin scheduler is what separates the coins: under
            // benign schedules both decide in ~1 round via the adoption
            // path and the coin never matters.
            .schedule(Schedule::Split { fast: 1, slow: 8 })
            .run();
        match report.decision_round() {
            Some(r) => rounds.add(r as f64),
            None => undecided += 1,
        }
    }
    (rounds, undecided)
}

/// Runs the F2 sweep.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(25, 80);
    let sizes = match mode {
        Mode::Quick => vec![4usize, 7, 10],
        Mode::Full => vec![4, 7, 10, 13, 16],
    };

    let mut table = Table::new(vec![
        "n",
        "local: mean rounds",
        "local: p95",
        "common: mean rounds",
        "common: p95",
    ]);

    for &n in &sizes {
        let (mut local, lu) = mean_rounds(n, CoinChoice::Local, seeds);
        let (mut common, cu) = mean_rounds(n, CoinChoice::Common, seeds);
        assert_eq!(lu + cu, 0, "all F2 runs must decide within budget");
        table.row(vec![
            n.to_string(),
            format!("{:.2}", local.mean()),
            format!("{:.1}", local.percentile(95.0).unwrap_or(0.0)),
            format!("{:.2}", common.mean()),
            format!("{:.1}", common.percentile(95.0).unwrap_or(0.0)),
        ]);
    }

    ExperimentReport {
        id: "F2",
        title: "expected rounds: local vs common coin".into(),
        claim: "with local coins expected rounds grow with the number of flipping nodes; a \
                common coin keeps them O(1)"
            .into(),
        table,
        notes: "expected shape: the local columns drift upward with n; the common columns stay \
                flat around 2"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_coin_stays_flat() {
        let report = run(Mode::Quick);
        // Parse the common-coin mean column and check it stays small.
        for line in report.table.render().lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let common_mean: f64 = cells[3].parse().unwrap();
            assert!(common_mean <= 5.0, "common coin rounds blew up: {line}");
        }
    }
}
