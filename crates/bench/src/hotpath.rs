//! Hot-path microbenchmarks: broadcast fan-out and validator ingest.
//!
//! These are the two inner loops the perf work targets — the per-recipient
//! cost of `Effect::Broadcast` inside the simulator and the per-message
//! cost of `Validator::ingest` — measured here as ns/message so the
//! numbers can be recorded into `BENCH_bracha.json` (see
//! [`crate::json_report`]) and tracked across PRs. The same routines back
//! the criterion benches in `benches/fanout.rs` and
//! `benches/validation.rs`.

use bft_sim::{FixedDelay, StopPolicy, World, WorldConfig};
use bft_types::{Config, Effect, NodeId, Process, Round, Value};
use bracha::validation::Validator;
use bracha::StepPayload;
use std::time::Instant;

/// Payload size for the fan-out bench: large enough that deep-cloning it
/// per recipient dominates, small enough to stay cache-friendly.
pub const FANOUT_PAYLOAD_BYTES: usize = 1024;

/// A deliberately chatty process: broadcasts a heap payload at start and
/// re-broadcasts every delivery, so a capped run is almost purely
/// fan-out + delivery overhead.
struct Flooder {
    me: NodeId,
    payload: Vec<u8>,
}

impl Process for Flooder {
    type Msg = Vec<u8>;
    type Output = ();

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self) -> Vec<Effect<Self::Msg, Self::Output>> {
        if self.me.index() == 0 {
            vec![Effect::Broadcast { msg: self.payload.clone() }]
        } else {
            Vec::new()
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &Self::Msg) -> Vec<Effect<Self::Msg, ()>> {
        vec![Effect::Broadcast { msg: msg.clone() }]
    }

    fn output(&self) -> Option<()> {
        None
    }

    fn is_halted(&self) -> bool {
        false
    }
}

/// Mean cost, in nanoseconds per *sent* message, of flooding `n` nodes
/// with [`FANOUT_PAYLOAD_BYTES`]-byte broadcasts until `deliveries`
/// messages have been delivered.
pub fn fanout_ns_per_msg(n: usize, deliveries: u64) -> f64 {
    let mut world = World::new(
        WorldConfig::new(n).stop_policy(StopPolicy::QueueDrain).max_delivered(deliveries),
        FixedDelay::new(1),
    );
    for i in 0..n {
        world.add_process(Box::new(Flooder {
            me: NodeId::new(i),
            payload: vec![0xAB; FANOUT_PAYLOAD_BYTES],
        }));
    }
    let start = Instant::now();
    let report = world.run();
    let nanos = start.elapsed().as_nanos() as f64;
    assert!(report.metrics.sent > 0, "flood must send messages");
    nanos / report.metrics.sent as f64
}

/// Mean cost, in nanoseconds per message, of `Validator::ingest` over
/// `rounds` full rounds of traffic from `n` nodes, arriving in protocol
/// order (Initial, Echo, flagged Ready per round).
pub fn validator_ingest_ns_per_msg(n: usize, rounds: u64) -> f64 {
    let cfg = Config::max_resilience(n).expect("n > 0");
    let mut val = Validator::new(cfg, true);
    let mut ingested = 0u64;
    let start = Instant::now();
    for r in 1..=rounds {
        let round = Round::new(r);
        for step in [
            StepPayload::Initial(Value::One),
            StepPayload::Echo(Value::One),
            StepPayload::Ready { value: Value::One, flagged: true },
        ] {
            for i in 0..n {
                let _ = val.ingest(round, NodeId::new(i), step);
                ingested += 1;
            }
        }
    }
    let nanos = start.elapsed().as_nanos() as f64;
    nanos / ingested as f64
}

/// Like [`validator_ingest_ns_per_msg`] but with each round's steps
/// arriving in *reverse* order, so every message is buffered as pending
/// and released by the cascade — the worst case for the drain logic.
pub fn validator_pending_ns_per_msg(n: usize, rounds: u64) -> f64 {
    let cfg = Config::max_resilience(n).expect("n > 0");
    let mut val = Validator::new(cfg, true);
    let mut ingested = 0u64;
    let start = Instant::now();
    for r in 1..=rounds {
        let round = Round::new(r);
        for step in [
            StepPayload::Ready { value: Value::One, flagged: true },
            StepPayload::Echo(Value::One),
            StepPayload::Initial(Value::One),
        ] {
            for i in 0..n {
                let _ = val.ingest(round, NodeId::new(i), step);
                ingested += 1;
            }
        }
    }
    let nanos = start.elapsed().as_nanos() as f64;
    nanos / ingested as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_bench_runs() {
        let ns = fanout_ns_per_msg(4, 500);
        assert!(ns > 0.0 && ns.is_finite());
    }

    #[test]
    fn validator_benches_run() {
        assert!(validator_ingest_ns_per_msg(4, 20) > 0.0);
        assert!(validator_pending_ns_per_msg(4, 20) > 0.0);
    }
}
