//! F1 — probability-1 termination: the distribution of rounds-to-decide
//! is geometric-tailed, so non-termination has probability 0.

use crate::common::{ExperimentReport, Mode};
use async_bft::{Cluster, CoinChoice, Schedule};
use bft_stats::{Histogram, Table};

/// Runs the F1 distribution sweep.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(200, 1000);
    let n = 7;

    let mut hist = Histogram::new();
    let mut undecided = 0usize;
    for seed in 0..seeds as u64 {
        let report = Cluster::new(n)
            .expect("n >= 1")
            .seed(seed)
            .split_inputs(n / 2)
            .coin(CoinChoice::Local)
            // The anti-coin scheduler stretches the tail.
            .schedule(Schedule::Split { fast: 1, slow: 8 })
            .run();
        match report.decision_round() {
            Some(r) => hist.add(r),
            None => undecided += 1,
        }
    }

    let mut table = Table::new(vec!["rounds r", "P[R = r]", "P[R > r]"]);
    for (value, count) in hist.iter() {
        table.row(vec![
            value.to_string(),
            format!("{:.3}", count as f64 / hist.count() as f64),
            format!("{:.3}", hist.tail_probability(value)),
        ]);
    }

    let notes = format!(
        "histogram of rounds-to-decide over {} runs (n = {n}, local coin, anti-coin \
         scheduler):\n{}\nmean = {:.2} rounds; undecided within budget: {}\nexpected shape: \
         geometrically decaying tail (each round ends unanimous with constant probability)",
        seeds,
        hist.render(40),
        hist.mean(),
        undecided,
    );

    ExperimentReport {
        id: "F1",
        title: "rounds-to-decide distribution (probability-1 termination)".into(),
        claim: "P[R > r] decays geometrically; termination has probability 1".into(),
        table,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_quick_run_terminates_and_tail_decays() {
        let report = run(Mode::Quick);
        assert!(report.notes.contains("undecided within budget: 0"));
        // Tail at the median must already be below 1.
        assert!(!report.table.is_empty());
    }
}
