//! The experiment harness: one module per table/figure of the
//! reproduction (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Every experiment is a pure function from a [`Mode`] (quick vs full
//! sample sizes) to a rendered report: a [`bft_stats::Table`] plus
//! free-text commentary. The `experiments` binary prints them and dumps
//! CSVs; the criterion benches under `benches/` measure the wall-clock
//! cost of the same code paths.

#![forbid(unsafe_code)]
// Quorum thresholds are deliberately spelled `f + 1`, `2f + 1`, `3f + 1`
// to match the paper's statements, even where clippy prefers `> f`.
#![allow(clippy::int_plus_one)]
#![warn(missing_docs)]

pub mod common;
pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod hotpath;
pub mod json_report;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t7;
pub mod t8;
pub mod t9;

pub use common::{ExperimentReport, Mode};

/// A named experiment runner.
pub type Experiment = (&'static str, fn(Mode) -> ExperimentReport);

/// Every experiment, in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("t1", t1::run as fn(Mode) -> ExperimentReport),
        ("t2", t2::run),
        ("t3", t3::run),
        ("t4", t4::run),
        ("t5", t5::run),
        ("t6", t6::run),
        ("t7", t7::run),
        ("t8", t8::run),
        ("t9", t9::run),
        ("f1", f1::run),
        ("f2", f2::run),
        ("f3", f3::run),
        ("f4", f4::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_unique_and_complete() {
        let ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        assert_eq!(ids.len(), 13);
    }
}
