//! Shared machinery of the experiment harness.

use bft_adversary::DoubleTalker;
use bft_coin::LocalCoin;
use bft_sim::{Report, StopReason, UniformDelay, World, WorldConfig};
use bft_stats::{Samples, Table};
use bft_types::{Config, NodeId, Value};
use bracha::benor::BenOrProcess;

/// Sample-size selector: `quick` keeps the full harness under a minute;
/// `full` is the publication-quality pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Small seed counts (CI-friendly).
    Quick,
    /// Large seed counts.
    Full,
}

impl Mode {
    /// Picks a seed count by mode.
    pub fn seeds(self, quick: usize, full: usize) -> usize {
        match self {
            Mode::Quick => quick,
            Mode::Full => full,
        }
    }
}

/// The rendered result of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"T1"`.
    pub id: &'static str,
    /// One-line title.
    pub title: String,
    /// The paper's claim this experiment regenerates.
    pub claim: String,
    /// The main table.
    pub table: Table,
    /// Optional free-text (histograms, notes).
    pub notes: String,
}

impl ExperimentReport {
    /// Renders the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   claim: {}\n\n", self.claim));
        out.push_str(&self.table.render());
        if !self.notes.is_empty() {
            out.push('\n');
            out.push_str(&self.notes);
            if !self.notes.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

/// Aggregates run verdicts for one experiment cell.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    /// Total runs.
    pub runs: usize,
    /// Runs where every correct node decided.
    pub terminated: usize,
    /// Runs where the deciders agreed.
    pub agreed: usize,
    /// Runs where every correct decision matched the expected value.
    pub valid: usize,
    /// Decision rounds (terminated runs only).
    pub rounds: Samples,
    /// Messages sent (all runs).
    pub msgs: Samples,
    /// Simulated end-to-decision time (terminated runs only).
    pub ticks: Samples,
}

impl Tally {
    /// Folds one simulation report into the tally. `expected` is the
    /// validity oracle (the value every correct node must decide), if the
    /// run pins one down.
    pub fn add(&mut self, report: &Report<Value>, expected: Option<Value>) {
        self.runs += 1;
        let terminated = report.all_correct_decided();
        if terminated {
            self.terminated += 1;
            if let Some(r) = report.decision_round() {
                self.rounds.add(r as f64);
            }
            if let Some(t) = report.decision_latency() {
                self.ticks.add(t.ticks() as f64);
            }
        }
        if report.agreement_holds() {
            self.agreed += 1;
        }
        let valid = match expected {
            Some(e) => {
                report.correct.iter().filter_map(|id| report.outputs.get(id)).all(|o| *o == e)
            }
            // Without an oracle, validity is vacuous (mixed inputs).
            None => true,
        };
        if valid {
            self.valid += 1;
        }
        self.msgs.add(report.metrics.sent as f64);
    }

    /// Percentage rendering helper.
    pub fn pct(num: usize, den: usize) -> String {
        if den == 0 {
            return "-".to_string();
        }
        format!("{:.0}%", 100.0 * num as f64 / den as f64)
    }

    /// `terminated / runs` as a percentage string.
    pub fn term_pct(&self) -> String {
        Self::pct(self.terminated, self.runs)
    }

    /// `agreed / runs` as a percentage string.
    pub fn agree_pct(&self) -> String {
        Self::pct(self.agreed, self.runs)
    }

    /// `valid / runs` as a percentage string.
    pub fn valid_pct(&self) -> String {
        Self::pct(self.valid, self.runs)
    }
}

/// Formats a float with two decimals, `-` when the sample set is empty.
pub fn fmt_mean(samples: &Samples) -> String {
    if samples.is_empty() {
        "-".to_string()
    } else {
        format!("{:.2}", samples.mean())
    }
}

/// Runs one Ben-Or cluster with `double_talkers` Byzantine nodes (ids
/// `n-double_talkers..n`) and all correct nodes starting from `input`.
///
/// Returns the simulation report; `f_cfg` is the fault bound baked into
/// the protocol's thresholds (exceed `n > 5f` to demonstrate breakage).
pub fn run_benor(
    n: usize,
    f_cfg: usize,
    double_talkers: usize,
    input: Value,
    seed: u64,
    max_rounds: u64,
) -> Report<Value> {
    let cfg = Config::new_unchecked_resilience(n, f_cfg).expect("valid unchecked config");
    let mut world =
        World::new(WorldConfig::new(n).max_delivered(2_000_000), UniformDelay::new(1, 20, seed));
    for id in cfg.nodes() {
        if id.index() >= n - double_talkers {
            world.add_faulty_process(Box::new(DoubleTalker::new(cfg, id)));
        } else {
            world.add_process(Box::new(BenOrProcess::new(
                cfg,
                id,
                input,
                LocalCoin::new(seed, id),
                max_rounds,
            )));
        }
    }
    world.run()
}

/// True when the run ended because the message budget blew up — the
/// signature of a liveness failure in a bounded experiment.
pub fn budget_blown(report: &Report<Value>) -> bool {
    report.stop == StopReason::BudgetExhausted
}

/// The id helper used across experiments.
pub fn node(i: usize) -> NodeId {
    NodeId::new(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_selects_seed_counts() {
        assert_eq!(Mode::Quick.seeds(5, 50), 5);
        assert_eq!(Mode::Full.seeds(5, 50), 50);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(Tally::pct(5, 10), "50%");
        assert_eq!(Tally::pct(0, 0), "-");
    }

    #[test]
    fn benor_runner_terminates_on_clean_inputs() {
        let report = run_benor(6, 1, 0, Value::One, 1, 1_000);
        assert!(report.all_correct_decided());
        assert_eq!(report.unanimous_output(), Some(Value::One));
    }
}
