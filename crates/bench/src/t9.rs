//! T9 — from 1984 to modern async BFT: Bracha's RBC-based consensus vs
//! the MMR-style ABA that descends from it. Same guarantees (`n ≥ 3f+1`,
//! probability-1 termination), ~n× cheaper rounds.

use crate::common::{fmt_mean, ExperimentReport, Mode, Tally};
use async_bft::{Cluster, CoinChoice, Schedule};
use bft_coin::CommonCoin;
use bft_sim::{Report, UniformDelay, World, WorldConfig};
use bft_stats::Table;
use bft_types::{Config, Value};
use bracha::mmr::MmrProcess;

fn run_mmr(n: usize, seed: u64) -> Report<Value> {
    let cfg = Config::max_resilience(n).expect("n >= 1");
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
    for id in cfg.nodes() {
        let input = Value::from_bool(id.index() < n / 2);
        world.add_process(Box::new(MmrProcess::new(
            cfg,
            id,
            input,
            CommonCoin::new(seed, 0),
            10_000,
        )));
    }
    world.run()
}

/// Runs the T9 comparison.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(10, 40);
    let sizes = match mode {
        Mode::Quick => vec![4usize, 7, 10],
        Mode::Full => vec![4, 7, 10, 13, 16],
    };

    let mut table = Table::new(vec![
        "n",
        "bracha'84: rounds",
        "bracha'84: msgs",
        "mmr'14: rounds",
        "mmr'14: msgs",
        "msg ratio",
    ]);

    for &n in &sizes {
        let mut bracha = Tally::default();
        let mut mmr = Tally::default();
        for seed in 0..seeds as u64 {
            let report = Cluster::new(n)
                .expect("n >= 1")
                .seed(seed)
                .split_inputs(n / 2)
                .coin(CoinChoice::Common)
                .schedule(Schedule::Uniform { min: 1, max: 20 })
                .run();
            bracha.add(&report, None);
            let report = run_mmr(n, seed);
            mmr.add(&report, None);
        }
        assert_eq!(bracha.terminated, seeds, "bracha runs must all decide");
        assert_eq!(mmr.terminated, seeds, "mmr runs must all decide");
        let ratio = bracha.msgs.mean() / mmr.msgs.mean();
        table.row(vec![
            n.to_string(),
            fmt_mean(&bracha.rounds),
            format!("{:.0}", bracha.msgs.mean()),
            fmt_mean(&mmr.rounds),
            format!("{:.0}", mmr.msgs.mean()),
            format!("{ratio:.1}x"),
        ]);
    }

    ExperimentReport {
        id: "T9",
        title: "Bracha 1984 vs modern ABA (MMR 2014), both with a common coin".into(),
        claim: "the descendant keeps the guarantees at ~n× fewer messages (O(n²) vs O(n³) per \
                round)"
            .into(),
        table,
        notes: "expected shape: similar round counts; the message ratio grows roughly linearly \
                with n"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmr_is_cheaper_and_the_gap_grows() {
        let report = run(Mode::Quick);
        let mut ratios = Vec::new();
        for line in report.table.render().lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let ratio: f64 = cells.last().unwrap().trim_end_matches('x').parse().unwrap();
            assert!(ratio > 1.0, "MMR must be cheaper: {line}");
            ratios.push(ratio);
        }
        assert!(
            ratios.last().unwrap() > ratios.first().unwrap(),
            "the gap should grow with n: {ratios:?}"
        );
    }
}
