//! Machine-readable run reports (`BENCH_*.json`).
//!
//! The tables in T1–T9 are rendered for humans; CI and downstream
//! analysis want numbers. This module runs the headline Bracha
//! configurations with a [`MetricsSink`] observer attached and renders
//! the aggregated per-round latency histograms and per-kind
//! message/byte counts as a single JSON document, written by the
//! `experiments` binary to `BENCH_bracha.json`.

use crate::common::Mode;
use async_bft::Cluster;
use bft_obs::json::JsonValue;
use bft_obs::{MetricsSink, Obs};

/// One benchmark configuration: `n` nodes at maximum resilience
/// `f = ⌊(n−1)/3⌋`, unanimous-one inputs, uniform 1–20 tick delays.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Cluster size.
    pub n: usize,
    /// Seeds to aggregate over.
    pub seeds: u64,
}

/// The headline configurations the acceptance gate pins down:
/// Bracha at n=4/f=1 and n=16/f=5.
pub fn headline_configs(mode: Mode) -> Vec<BenchConfig> {
    let seeds = mode.seeds(10, 100) as u64;
    vec![BenchConfig { n: 4, seeds }, BenchConfig { n: 16, seeds }]
}

/// Runs one configuration with an observer attached and returns its
/// JSON report fragment.
pub fn run_config(cfg: BenchConfig) -> JsonValue {
    let (obs, shared) = Obs::new(MetricsSink::new());
    let config = Cluster::new(cfg.n).expect("n > 0").config();
    let mut decided_runs = 0u64;
    let mut sim_msgs = 0u64;
    let mut sim_bytes = 0u64;
    for seed in 0..cfg.seeds {
        let report = Cluster::new(cfg.n).expect("n > 0").seed(seed).observer(obs.clone()).run();
        if report.all_correct_decided() {
            decided_runs += 1;
        }
        sim_msgs += report.metrics.sent;
        sim_bytes += report.metrics.bytes_sent;
    }
    drop(obs);
    let metrics = shared.lock().to_json();
    JsonValue::Obj(vec![
        ("protocol".into(), JsonValue::str("bracha")),
        ("n".into(), JsonValue::U64(config.n() as u64)),
        ("f".into(), JsonValue::U64(config.f() as u64)),
        ("seeds".into(), JsonValue::U64(cfg.seeds)),
        ("decided_runs".into(), JsonValue::U64(decided_runs)),
        ("messages_sent".into(), JsonValue::U64(sim_msgs)),
        ("bytes_sent".into(), JsonValue::U64(sim_bytes)),
        ("metrics".into(), metrics),
    ])
}

/// The full `BENCH_bracha.json` document.
pub fn bracha_report(mode: Mode) -> JsonValue {
    let configs: Vec<JsonValue> = headline_configs(mode).into_iter().map(run_config).collect();
    JsonValue::Obj(vec![
        ("suite".into(), JsonValue::str("bracha")),
        ("mode".into(), JsonValue::str(if mode == Mode::Full { "full" } else { "quick" })),
        ("schema_version".into(), JsonValue::U64(1)),
        ("configs".into(), JsonValue::Arr(configs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_both_headline_configs() {
        let report = bracha_report(Mode::Quick);
        let rendered = report.to_string();
        assert!(rendered.contains("\"suite\":\"bracha\""));
        assert!(rendered.contains("\"n\":4"));
        assert!(rendered.contains("\"n\":16"));
        assert!(rendered.contains("\"round_latency\""));
        assert!(rendered.contains("\"messages_by_kind\""));
        assert!(rendered.contains("echo/echo"));
    }

    #[test]
    fn every_quick_run_decides() {
        let fragment = run_config(BenchConfig { n: 4, seeds: 3 }).to_string();
        assert!(fragment.contains("\"decided_runs\":3"));
    }
}
