//! Machine-readable run reports (`BENCH_*.json`).
//!
//! The tables in T1–T9 are rendered for humans; CI and downstream
//! analysis want numbers. This module runs the headline Bracha
//! configurations with a [`MetricsSink`] observer attached and renders
//! the aggregated per-round latency histograms and per-kind
//! message/byte counts as a single JSON document, written by the
//! `experiments` binary to `BENCH_bracha.json`.
//!
//! # Determinism and parallelism
//!
//! Each seed runs with its **own** `MetricsSink`; the per-seed sinks are
//! merged in ascending-seed order afterwards (see [`MetricsSink::merge`]).
//! Because the merge order is pinned, fanning the seeds out across worker
//! threads ([`run_config`]'s `jobs` parameter) produces the exact same
//! aggregate bytes as running them sequentially — the only fields that
//! may differ between invocations are the wall-clock measurements under
//! the `"timing"` and `"microbench"` keys, which are explicitly excluded
//! from the determinism guarantee (and from
//! [`ConfigOutcome::deterministic_fragment`]).

use crate::common::Mode;
use crate::hotpath;
use async_bft::Cluster;
use bft_obs::json::JsonValue;
use bft_obs::{MetricsSink, Obs};
use std::time::Instant;

/// One benchmark configuration: `n` nodes at maximum resilience
/// `f = ⌊(n−1)/3⌋`, unanimous-one inputs, uniform 1–20 tick delays.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Cluster size.
    pub n: usize,
    /// Seeds to aggregate over.
    pub seeds: u64,
}

/// The headline configurations the acceptance gate pins down:
/// Bracha at n=4/f=1 and n=16/f=5.
pub fn headline_configs(mode: Mode) -> Vec<BenchConfig> {
    let seeds = mode.seeds(10, 100) as u64;
    vec![BenchConfig { n: 4, seeds }, BenchConfig { n: 16, seeds }]
}

/// The CI smoke configuration: n=4/f=1 over a handful of seeds, small
/// enough to run in seconds on a cold runner.
pub fn smoke_configs() -> Vec<BenchConfig> {
    vec![BenchConfig { n: 4, seeds: 5 }]
}

/// Everything one seed's run contributes to the aggregate.
struct SeedOutcome {
    sink: MetricsSink,
    decided: bool,
    sent: u64,
    bytes_sent: u64,
    wall_nanos: u64,
}

fn run_seed(n: usize, seed: u64) -> SeedOutcome {
    let (obs, shared) = Obs::new(MetricsSink::new());
    let started = Instant::now();
    let report = Cluster::new(n).expect("n > 0").seed(seed).observer(obs.clone()).run();
    let wall_nanos = started.elapsed().as_nanos() as u64;
    drop(obs);
    let sink = shared.try_into_inner().expect("observer handles dropped with the world");
    SeedOutcome {
        sink,
        decided: report.all_correct_decided(),
        sent: report.metrics.sent,
        bytes_sent: report.metrics.bytes_sent,
        wall_nanos,
    }
}

/// The result of running one [`BenchConfig`]: a deterministic aggregate
/// fragment plus the (inherently non-deterministic) wall-clock numbers.
pub struct ConfigOutcome {
    fields: Vec<(String, JsonValue)>,
    /// Sum of per-seed wall-clock nanoseconds. Summing per-seed makes the
    /// figure independent of how many workers ran the seeds.
    pub wall_nanos: u64,
    /// Total `Decided` events across all seeds.
    pub decisions: u64,
}

impl ConfigOutcome {
    /// The aggregate without any timing fields — byte-identical across
    /// repeated runs regardless of `jobs`.
    pub fn deterministic_fragment(&self) -> JsonValue {
        JsonValue::Obj(self.fields.clone())
    }

    /// The full per-config report fragment, timing section included.
    pub fn fragment(&self) -> JsonValue {
        let mut fields = self.fields.clone();
        let per_decision_us = if self.decisions == 0 {
            0.0
        } else {
            self.wall_nanos as f64 / self.decisions as f64 / 1_000.0
        };
        fields.push((
            "timing".into(),
            JsonValue::Obj(vec![
                ("wall_clock_ms".into(), JsonValue::F64(self.wall_nanos as f64 / 1e6)),
                ("decisions".into(), JsonValue::U64(self.decisions)),
                ("wall_clock_per_decision_us".into(), JsonValue::F64(per_decision_us)),
            ]),
        ));
        JsonValue::Obj(fields)
    }
}

/// Runs one configuration, fanning the seeds across `jobs` worker
/// threads (1 = sequential). The merge order of the per-seed sinks is
/// pinned to ascending seed, so the aggregate is identical for any
/// `jobs` value.
pub fn run_config_outcome(cfg: BenchConfig, jobs: usize) -> ConfigOutcome {
    let seeds = cfg.seeds;
    let mut outcomes: Vec<Option<SeedOutcome>> = Vec::new();
    outcomes.resize_with(seeds as usize, || None);

    let jobs = jobs.max(1).min(seeds.max(1) as usize);
    if jobs <= 1 {
        for (i, slot) in outcomes.iter_mut().enumerate() {
            *slot = Some(run_seed(cfg.n, i as u64));
        }
    } else {
        // Contiguous chunks: worker w owns seeds [w*chunk, ...), writing
        // only into its own slice of the results, so no locks are needed
        // and the output layout is independent of scheduling.
        let chunk = outcomes.len().div_ceil(jobs);
        crossbeam::thread::scope(|s| {
            for (w, slice) in outcomes.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = Some(run_seed(cfg.n, (w * chunk + i) as u64));
                    }
                });
            }
        });
    }

    let config = Cluster::new(cfg.n).expect("n > 0").config();
    let mut merged = MetricsSink::new();
    let mut decided_runs = 0u64;
    let mut sim_msgs = 0u64;
    let mut sim_bytes = 0u64;
    let mut wall_nanos = 0u64;
    // Pinned merge order: ascending seed.
    for outcome in outcomes.into_iter().map(|o| o.expect("every seed ran")) {
        merged.merge(&outcome.sink);
        decided_runs += u64::from(outcome.decided);
        sim_msgs += outcome.sent;
        sim_bytes += outcome.bytes_sent;
        wall_nanos += outcome.wall_nanos;
    }
    let decisions = merged.decide_times().len() as u64;
    let fields = vec![
        ("protocol".into(), JsonValue::str("bracha")),
        ("n".into(), JsonValue::U64(config.n() as u64)),
        ("f".into(), JsonValue::U64(config.f() as u64)),
        ("seeds".into(), JsonValue::U64(cfg.seeds)),
        ("decided_runs".into(), JsonValue::U64(decided_runs)),
        ("messages_sent".into(), JsonValue::U64(sim_msgs)),
        ("bytes_sent".into(), JsonValue::U64(sim_bytes)),
        ("metrics".into(), merged.to_json()),
    ];
    ConfigOutcome { fields, wall_nanos, decisions }
}

/// Runs one configuration and returns its JSON report fragment
/// (timing included).
pub fn run_config(cfg: BenchConfig, jobs: usize) -> JsonValue {
    run_config_outcome(cfg, jobs).fragment()
}

/// The hot-path microbenchmark section: ns/message figures for broadcast
/// fan-out and validator ingest (see [`crate::hotpath`]). Wall-clock —
/// excluded from the determinism guarantee.
pub fn microbench_section() -> JsonValue {
    JsonValue::Obj(vec![
        ("fanout_ns_per_msg_n16".into(), JsonValue::F64(hotpath::fanout_ns_per_msg(16, 20_000))),
        ("fanout_payload_bytes".into(), JsonValue::U64(hotpath::FANOUT_PAYLOAD_BYTES as u64)),
        (
            "validator_ingest_ns_per_msg_n16".into(),
            JsonValue::F64(hotpath::validator_ingest_ns_per_msg(16, 2_000)),
        ),
        (
            "validator_pending_ns_per_msg_n16".into(),
            JsonValue::F64(hotpath::validator_pending_ns_per_msg(16, 2_000)),
        ),
    ])
}

/// Decision latency of the same protocol over the real loopback TCP
/// transport (`bft-net`): n=4/f=1 Bracha clusters on actual sockets,
/// one cluster per seed. Wall-clock — excluded from the determinism
/// guarantee, like the `timing` and `microbench` sections.
pub fn net_loopback_section(runs: u64) -> JsonValue {
    use async_bft::coin::LocalCoin;
    use async_bft::consensus::{BrachaOptions, BrachaProcess};
    use async_bft::net::NetRuntime;
    use async_bft::types::{Config, Value};
    use std::time::Duration;

    let cfg = Config::new(4, 1).expect("4 >= 3f + 1");
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut decided = 0u64;
    let mut merged = MetricsSink::new();
    for seed in 0..runs {
        let (obs, shared) = Obs::new(MetricsSink::new());
        let mut rt =
            NetRuntime::new(cfg.n()).timeout(Duration::from_secs(60)).observer(obs.clone());
        for id in cfg.nodes() {
            rt.add_process(Box::new(BrachaProcess::new(
                cfg,
                id,
                Value::One,
                LocalCoin::new(seed, id),
                BrachaOptions::default(),
            )));
        }
        let report = rt.run();
        drop(obs);
        let sink = shared.try_into_inner().expect("observer handles dropped with the runtime");
        merged.merge(&sink);
        decided += u64::from(report.all_correct_decided());
        latencies_ms.push(report.elapsed.as_secs_f64() * 1e3);
    }
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    let max = latencies_ms.iter().copied().fold(0.0f64, f64::max);
    JsonValue::Obj(vec![
        ("protocol".into(), JsonValue::str("bracha")),
        ("transport".into(), JsonValue::str("tcp-loopback")),
        ("n".into(), JsonValue::U64(cfg.n() as u64)),
        ("f".into(), JsonValue::U64(cfg.f() as u64)),
        ("runs".into(), JsonValue::U64(runs)),
        ("decided_runs".into(), JsonValue::U64(decided)),
        (
            "decision_latency_ms".into(),
            JsonValue::Obj(vec![
                ("mean".into(), JsonValue::F64(mean)),
                ("max".into(), JsonValue::F64(max)),
            ]),
        ),
        ("peer_connects".into(), JsonValue::U64(merged.peer_connects())),
        ("frame_decode_errors".into(), JsonValue::U64(merged.frame_decode_errors())),
    ])
}

/// One gateway load point: a loopback TCP cluster under the reactor
/// driver with an open-loop client load generator in front.
#[derive(Clone, Copy)]
struct GatewayPoint {
    n: usize,
    epochs: u64,
    pipeline_depth: usize,
    batch_max: usize,
    clients: u64,
    rate_tx_per_s: u64,
    duration_ms: u64,
    timeout_s: u64,
}

/// The gateway sweep by report mode. Epoch wall time grows as O(n⁴)
/// messages per epoch (every ABA step message rides a full O(n²) RBC —
/// see DESIGN.md "The n⁴ wall"), so the larger geometries run the
/// minimal committing configuration: pipeline depth 1 and two epochs,
/// of which the first is proposed empty before clients connect and the
/// second carries the client payload.
fn gateway_points(mode_label: &str) -> Vec<GatewayPoint> {
    let base = GatewayPoint {
        n: 16,
        epochs: 4,
        pipeline_depth: 2,
        batch_max: 8,
        clients: 64,
        rate_tx_per_s: 2_000,
        duration_ms: 10_000,
        timeout_s: 300,
    };
    if mode_label == "smoke" {
        // One small point that a cold CI runner finishes in seconds.
        return vec![GatewayPoint { epochs: 3, duration_ms: 3_000, timeout_s: 120, ..base }];
    }
    vec![
        base,
        GatewayPoint {
            n: 32,
            epochs: 2,
            pipeline_depth: 1,
            batch_max: 4,
            clients: 128,
            duration_ms: 20_000,
            timeout_s: 900,
            ..base
        },
        GatewayPoint {
            n: 64,
            epochs: 2,
            pipeline_depth: 1,
            batch_max: 4,
            clients: 256,
            duration_ms: 30_000,
            timeout_s: 3_600,
            ..base
        },
    ]
}

/// Client-gateway saturation throughput and submit→commit latency over
/// real loopback TCP under the reactor driver: an open-loop generator
/// submits from hundreds of simulated clients against every node's
/// gateway listener, and each row reports how many submissions came back
/// committed, at what latency, and with how many OS threads. Wall-clock
/// — excluded from the determinism guarantee, like `net_loopback`.
pub fn gateway_section(mode_label: &str) -> JsonValue {
    use async_bft::net::LoadGenConfig;
    use async_bft::order::OrderOptions;
    use async_bft::{run_gateway_load, GatewayLoadOptions};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let rows: Vec<JsonValue> = gateway_points(mode_label)
        .into_iter()
        .map(|p| {
            let opts = GatewayLoadOptions {
                n: p.n,
                seed: 7,
                order: OrderOptions {
                    batch_max: p.batch_max,
                    pipeline_depth: p.pipeline_depth,
                    epochs: p.epochs,
                    ..OrderOptions::default()
                },
                load: LoadGenConfig {
                    clients: p.clients,
                    rate_tx_per_s: p.rate_tx_per_s,
                    tx_bytes: 32,
                    duration_ms: p.duration_ms,
                    drain_ms: 2_000,
                    ..LoadGenConfig::default()
                },
                timeout: Duration::from_secs(p.timeout_s),
            };

            // Sample the process's peak thread count while the cluster
            // is up: the reactor acceptance figure (< 8 threads per
            // node) lands in the artifact instead of only in test logs.
            let stop = Arc::new(AtomicBool::new(false));
            let peak = Arc::new(AtomicU64::new(0));
            let sampler = {
                let (stop, peak) = (stop.clone(), peak.clone());
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(t) = current_thread_count() {
                            peak.fetch_max(t, Ordering::Relaxed);
                        }
                        std::thread::sleep(Duration::from_millis(200));
                    }
                })
            };
            let out = run_gateway_load(&opts, Obs::disabled()).expect("gateway bench setup");
            stop.store(true, Ordering::Relaxed);
            let _ = sampler.join();

            let elapsed_s = out.report.elapsed.as_secs_f64().max(1e-9);
            let peak_threads = peak.load(Ordering::Relaxed);
            JsonValue::Obj(vec![
                ("n".into(), JsonValue::U64(p.n as u64)),
                ("epochs".into(), JsonValue::U64(p.epochs)),
                ("pipeline_depth".into(), JsonValue::U64(p.pipeline_depth as u64)),
                ("batch_max".into(), JsonValue::U64(p.batch_max as u64)),
                ("clients".into(), JsonValue::U64(p.clients)),
                ("offered_tx_per_s".into(), JsonValue::U64(p.rate_tx_per_s)),
                ("submitted".into(), JsonValue::U64(out.load.submitted)),
                ("committed".into(), JsonValue::U64(out.load.committed)),
                ("backpressure_nacks".into(), JsonValue::U64(out.load.nacked)),
                ("ordered_txs".into(), JsonValue::U64(out.ordered_txs.unwrap_or(0) as u64)),
                ("anomalies".into(), JsonValue::U64(out.anomalies())),
                ("elapsed_ms".into(), JsonValue::U64(out.report.elapsed.as_millis() as u64)),
                (
                    "saturation_committed_tx_per_s".into(),
                    JsonValue::F64(out.load.committed as f64 / elapsed_s),
                ),
                (
                    "submit_commit_latency_us".into(),
                    JsonValue::Obj(vec![
                        ("p50".into(), JsonValue::U64(out.load.p50_us)),
                        ("p99".into(), JsonValue::U64(out.load.p99_us)),
                    ]),
                ),
                ("peak_process_threads".into(), JsonValue::U64(peak_threads)),
                ("threads_per_node".into(), JsonValue::F64(peak_threads as f64 / p.n as f64)),
            ])
        })
        .collect();

    JsonValue::Obj(vec![
        ("protocol".into(), JsonValue::str("bracha-acs-order")),
        ("transport".into(), JsonValue::str("tcp-loopback-reactor")),
        ("generator".into(), JsonValue::str("open-loop")),
        ("points".into(), JsonValue::Arr(rows)),
    ])
}

/// Current thread count of this process (Linux `/proc`); `None` where
/// the proc filesystem is unavailable.
fn current_thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The fixed batch cap of the throughput section's workloads.
const THROUGHPUT_BATCH_MAX: usize = 4;

/// One deterministic ordering run (n=4/f=1, fixed seed and workload) at
/// the given pipeline depth: returns the merged sink, the ordered
/// payload count, the simulated ticks to completion, and whether every
/// correct node output the log.
fn ordering_run(epochs: u64, depth: usize) -> (MetricsSink, u64, u64, bool) {
    use async_bft::coin::CommonCoin;
    use async_bft::order::{OrderOptions, OrderProcess};
    use async_bft::sim::{UniformDelay, World, WorldConfig};
    use async_bft::types::Config;

    let cfg = Config::new(4, 1).expect("4 >= 3f + 1");
    let seed = 7u64;
    let opts = OrderOptions {
        batch_max: THROUGHPUT_BATCH_MAX,
        pipeline_depth: depth,
        epochs,
        ..OrderOptions::default()
    };
    let (obs, shared) = Obs::new(MetricsSink::new());
    let mut world = World::new(WorldConfig::new(cfg.n()), UniformDelay::new(1, 20, seed));
    world.set_observer(obs.clone());
    for id in cfg.nodes() {
        let workload: Vec<Vec<u8>> = (0..epochs * THROUGHPUT_BATCH_MAX as u64)
            .map(|i| format!("tx-{}-{i}", id.index()).into_bytes())
            .collect();
        world.add_process(Box::new(
            OrderProcess::new(cfg, id, opts, workload, move |inst| CommonCoin::new(seed, inst))
                .with_obs(obs.clone()),
        ));
    }
    let report = world.run();
    drop(obs);
    let sink = shared.try_into_inner().expect("observer handles dropped with the world");
    let ticks = report.end_time.ticks().max(1);
    let txs = report.unanimous_output().map_or(0, |log| log.len() as u64);
    (sink, txs, ticks, report.all_correct_decided())
}

/// Atomic-broadcast throughput over the deterministic sim substrate:
/// one epoch-pipelined ordering cluster (n=4/f=1) per pipeline depth,
/// identical seed and workload, `epochs` epochs each. Latency and
/// occupancy figures are simulated ticks via the observer clock, so —
/// unlike `timing`/`microbench`/`net_loopback` — this whole section is
/// covered by the determinism guarantee.
pub fn throughput_section(epochs: u64) -> JsonValue {
    let mut per_depth = Vec::new();
    for depth in [1usize, 4] {
        let (sink, txs, ticks, decided) = ordering_run(epochs, depth);
        let latency = sink.epoch_commit_latency();
        per_depth.push(JsonValue::Obj(vec![
            ("pipeline_depth".into(), JsonValue::U64(depth as u64)),
            ("decided".into(), JsonValue::U64(u64::from(decided))),
            ("txs_ordered".into(), JsonValue::U64(txs)),
            ("sim_ticks".into(), JsonValue::U64(ticks)),
            ("tx_per_kilotick".into(), JsonValue::F64(txs as f64 * 1000.0 / ticks as f64)),
            (
                "epoch_commit_latency_ticks".into(),
                JsonValue::Obj(vec![
                    ("mean".into(), JsonValue::F64(latency.mean())),
                    ("max".into(), JsonValue::F64(latency.max().unwrap_or(0.0))),
                ]),
            ),
            (
                "pipeline_occupancy".into(),
                JsonValue::Obj(vec![
                    ("mean".into(), JsonValue::F64(sink.pipeline_occupancy().mean())),
                    ("max".into(), JsonValue::U64(sink.max_pipeline_occupancy())),
                ]),
            ),
            ("epochs_committed".into(), JsonValue::U64(sink.epochs_committed())),
        ]));
    }
    JsonValue::Obj(vec![
        ("protocol".into(), JsonValue::str("bracha-acs-order")),
        ("substrate".into(), JsonValue::str("sim")),
        ("n".into(), JsonValue::U64(4)),
        ("f".into(), JsonValue::U64(1)),
        ("epochs".into(), JsonValue::U64(epochs)),
        ("batch_max".into(), JsonValue::U64(THROUGHPUT_BATCH_MAX as u64)),
        ("depths".into(), JsonValue::Arr(per_depth)),
    ])
}

/// One deterministic ordering run with the trace assembler attached
/// instead of the metrics sink: same n=4/f=1, seed-7, uniform 1–20 tick
/// configuration as [`ordering_run`], pipeline depth 2.
fn tracing_run(epochs: u64) -> bft_obs::TraceAssembler {
    use async_bft::coin::CommonCoin;
    use async_bft::order::{OrderOptions, OrderProcess};
    use async_bft::sim::{UniformDelay, World, WorldConfig};
    use async_bft::types::Config;
    use bft_obs::TraceSink;

    let cfg = Config::new(4, 1).expect("4 >= 3f + 1");
    let seed = 7u64;
    let opts = OrderOptions {
        batch_max: THROUGHPUT_BATCH_MAX,
        pipeline_depth: 2,
        epochs,
        ..OrderOptions::default()
    };
    let (obs, shared) = Obs::new(TraceSink::new());
    let mut world = World::new(WorldConfig::new(cfg.n()), UniformDelay::new(1, 20, seed));
    world.set_observer(obs.clone());
    for id in cfg.nodes() {
        let workload: Vec<Vec<u8>> = (0..epochs * THROUGHPUT_BATCH_MAX as u64)
            .map(|i| format!("tx-{}-{i}", id.index()).into_bytes())
            .collect();
        world.add_process(Box::new(
            OrderProcess::new(cfg, id, opts, workload, move |inst| CommonCoin::new(seed, inst))
                .with_obs(obs.clone()),
        ));
    }
    let _ = world.run();
    drop(obs);
    shared.try_into_inner().expect("observer handles dropped with the world").into_assembler()
}

/// The `"tracing"` section: per-phase p50/p99 span latencies, the
/// summed submit→commit critical-path breakdown, and the per-instance
/// ABA round-count distribution, from one traced ordering run. All
/// figures are simulated ticks via the observer clock, so the section
/// is covered by the determinism guarantee.
pub fn tracing_section(epochs: u64) -> JsonValue {
    tracing_run(epochs).to_json()
}

/// The payload sizes the `rbc_bytes` section sweeps, in KiB.
const RBC_BYTES_PAYLOAD_KIB: [usize; 3] = [1, 16, 64];

/// The cluster sizes the `rbc_bytes` section sweeps.
const RBC_BYTES_CLUSTERS: [usize; 2] = [4, 16];

/// Per-message envelope overhead of the mux framing on the real wire
/// (sender id + instance tag), added on top of the exact `RbcMessage`
/// encoding so the simulated byte counts match what `bft-net` ships.
const RBC_ENVELOPE_BYTES: usize = 12;

/// Byte-exact wire classifier for reliable-broadcast messages: the
/// `bft-net` codec encoding plus the mux envelope.
fn classify_rbc_bytes(msg: &async_bft::rbc::RbcMessage<Vec<u8>>) -> async_bft::sim::MsgClass {
    use async_bft::net::Codec;
    let mut buf = Vec::new();
    msg.encode(&mut buf);
    async_bft::sim::MsgClass { kind: msg.kind(), bytes: buf.len() + RBC_ENVELOPE_BYTES }
}

/// Outcome of one `rbc_bytes` cell: exact wire bytes, message count,
/// ticks until the last correct node delivered, and whether every node
/// delivered the broadcast payload byte-for-byte.
struct RbcBytesOutcome {
    bytes_on_wire: u64,
    messages: u64,
    decision_ticks: u64,
    delivered: bool,
    by_kind: std::collections::BTreeMap<&'static str, (u64, u64)>,
}

impl RbcBytesOutcome {
    fn to_json(&self) -> JsonValue {
        let kinds = self
            .by_kind
            .iter()
            .map(|(kind, &(count, bytes))| {
                (
                    (*kind).to_string(),
                    JsonValue::Obj(vec![
                        ("messages".into(), JsonValue::U64(count)),
                        ("bytes".into(), JsonValue::U64(bytes)),
                    ]),
                )
            })
            .collect();
        JsonValue::Obj(vec![
            ("bytes_on_wire".into(), JsonValue::U64(self.bytes_on_wire)),
            ("messages".into(), JsonValue::U64(self.messages)),
            ("decision_ticks".into(), JsonValue::U64(self.decision_ticks)),
            ("delivered".into(), JsonValue::Bool(self.delivered)),
            ("by_kind".into(), JsonValue::Obj(kinds)),
        ])
    }
}

/// Runs one reliable-broadcast instance (Bracha or coded) to completion
/// under the deterministic sim with a byte-exact wire classifier
/// installed. Node 0 broadcasts a `payload_len`-byte deterministic
/// pattern; uniform 1–20 tick delays, fixed seed — the whole cell is
/// covered by the determinism guarantee.
fn rbc_bytes_run(n: usize, payload_len: usize, kind: async_bft::rbc::RbcKind) -> RbcBytesOutcome {
    use async_bft::rbc::{CodedProcess, RbcKind, RbcProcess};
    use async_bft::sim::{UniformDelay, World, WorldConfig};
    use async_bft::types::{Config, NodeId};

    let cfg = Config::max_resilience(n).expect("n >= 4");
    let sender = NodeId::new(0);
    let payload: Vec<u8> =
        (0..payload_len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect();

    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, 9));
    world.set_classifier(classify_rbc_bytes);
    for id in cfg.nodes() {
        let p = (id == sender).then(|| payload.clone());
        match kind {
            RbcKind::Bracha => {
                world.add_process(Box::new(RbcProcess::new(cfg, id, sender, p)));
            }
            RbcKind::Coded => {
                world.add_process(Box::new(CodedProcess::new(cfg, id, sender, p)));
            }
        }
    }
    let report = world.run();
    RbcBytesOutcome {
        bytes_on_wire: report.metrics.bytes_sent,
        messages: report.metrics.sent,
        decision_ticks: report.end_time.ticks(),
        delivered: report.all_correct_decided()
            && report.unanimous_output().as_deref() == Some(payload.as_slice()),
        by_kind: report.metrics.by_kind.clone(),
    }
}

/// The `"rbc_bytes"` section: bytes-on-wire and decision latency of one
/// reliable broadcast, Bracha vs erasure-coded, swept over payload size
/// and cluster size. Byte counts are the exact `bft-net` codec encoding
/// (plus mux envelope), so the coded-vs-Bracha ratios are the real wire
/// ratios. Fully deterministic.
///
/// The `headline` block pins the tentpole claim: at n=16/f=5 with a
/// 64 KiB payload, the coded broadcast ships at most 40% of Bracha's
/// bytes (the asymptotic gain is k = n − 2f = 6×; the measured ratio
/// includes echo amplification and commitment-proof overhead).
pub fn rbc_bytes_section() -> JsonValue {
    use async_bft::rbc::RbcKind;

    let mut sweeps = Vec::new();
    let mut headline_ratio = f64::NAN;
    for &n in &RBC_BYTES_CLUSTERS {
        let cfg = async_bft::types::Config::max_resilience(n).expect("n >= 4");
        for &kib in &RBC_BYTES_PAYLOAD_KIB {
            let payload_len = kib * 1024;
            let bracha = rbc_bytes_run(n, payload_len, RbcKind::Bracha);
            let coded = rbc_bytes_run(n, payload_len, RbcKind::Coded);
            let ratio = coded.bytes_on_wire as f64 / bracha.bytes_on_wire.max(1) as f64;
            if n == 16 && kib == 64 {
                headline_ratio = ratio;
            }
            sweeps.push(JsonValue::Obj(vec![
                ("n".into(), JsonValue::U64(n as u64)),
                ("f".into(), JsonValue::U64(cfg.f() as u64)),
                ("payload_bytes".into(), JsonValue::U64(payload_len as u64)),
                ("bracha".into(), bracha.to_json()),
                ("coded".into(), coded.to_json()),
                ("coded_to_bracha_byte_ratio".into(), JsonValue::F64(ratio)),
                ("coded_fewer_bytes".into(), JsonValue::Bool(ratio < 1.0)),
            ]));
        }
    }
    JsonValue::Obj(vec![
        ("protocol".into(), JsonValue::str("rbc")),
        ("substrate".into(), JsonValue::str("sim")),
        ("kinds".into(), JsonValue::Arr(vec![JsonValue::str("bracha"), JsonValue::str("coded")])),
        ("sweeps".into(), JsonValue::Arr(sweeps)),
        (
            "headline".into(),
            JsonValue::Obj(vec![
                ("n".into(), JsonValue::U64(16)),
                ("f".into(), JsonValue::U64(5)),
                ("payload_bytes".into(), JsonValue::U64(64 * 1024)),
                ("coded_to_bracha_byte_ratio".into(), JsonValue::F64(headline_ratio)),
                ("coded_bytes_leq_40pct_of_bracha".into(), JsonValue::Bool(headline_ratio <= 0.40)),
            ]),
        ),
    ])
}

/// One deterministic replicated-state-machine run over the sim
/// substrate: n=4/f=1, seed 7, seeded KV workload, checkpoint interval
/// 2, pipeline depth 2 — with the highest-indexed node crashed early
/// and restarted late, so rejoining goes through erasure-coded peer
/// state transfer from a certified checkpoint. Returns the merged sink,
/// the unanimous output, the simulated ticks to completion, and whether
/// every correct node (the recovered victim included) finished.
fn smr_run(epochs: u64) -> (MetricsSink, Option<async_bft::smr::SmrOutput>, u64, bool) {
    use async_bft::coin::CommonCoin;
    use async_bft::order::OrderOptions;
    use async_bft::sim::{SimTime, UniformDelay, World, WorldConfig};
    use async_bft::smr::{seeded_workload, SmrOptions, SmrProcess};
    use async_bft::types::{Config, NodeId};

    let cfg = Config::new(4, 1).expect("4 >= 3f + 1");
    let seed = 7u64;
    let opts = SmrOptions {
        order: OrderOptions {
            batch_max: THROUGHPUT_BATCH_MAX,
            pipeline_depth: 2,
            epochs,
            ..OrderOptions::default()
        },
        checkpoint_interval: 2,
    };
    let (obs, shared) = Obs::new(MetricsSink::new());
    let mut world = World::new(WorldConfig::new(cfg.n()), UniformDelay::new(1, 20, seed));
    world.set_observer(obs.clone());
    let count = (epochs * THROUGHPUT_BATCH_MAX as u64) as usize;
    let make = move |id: NodeId, obs: Obs| {
        SmrProcess::new(cfg, id, opts, seeded_workload(seed, id, count), move |inst| {
            CommonCoin::new(seed, inst)
        })
        .with_obs(obs)
    };
    for id in cfg.nodes() {
        world.add_process(Box::new(make(id, obs.clone())));
    }
    let victim = NodeId::new(cfg.n() - 1);
    world.schedule_crash(victim, SimTime::from_ticks(120));
    let obs_replacement = obs.clone();
    world.schedule_restart(
        victim,
        SimTime::from_ticks(1_500),
        Box::new(move || Box::new(make(victim, obs_replacement).recovering(true))),
    );
    let report = world.run();
    drop(obs);
    let sink = shared.try_into_inner().expect("observer handles dropped with the world");
    let ticks = report.end_time.ticks().max(1);
    (sink, report.unanimous_output(), ticks, report.all_correct_decided())
}

/// The `"state_machine"` section: applied-transaction throughput,
/// checkpoint certification latency, and crash-recovery catch-up bytes
/// from one deterministic replicated-KV run with a mid-run crash and
/// state-transfer rejoin. All figures are simulated ticks via the
/// observer clock, so the section is covered by the determinism
/// guarantee.
pub fn state_machine_section(epochs: u64) -> JsonValue {
    let (sink, out, ticks, decided) = smr_run(epochs);
    let latency = sink.checkpoint_latency();
    let applied = sink.slots_applied();
    JsonValue::Obj(vec![
        ("protocol".into(), JsonValue::str("bracha-smr-kv")),
        ("substrate".into(), JsonValue::str("sim")),
        ("n".into(), JsonValue::U64(4)),
        ("f".into(), JsonValue::U64(1)),
        ("epochs".into(), JsonValue::U64(epochs)),
        ("checkpoint_interval".into(), JsonValue::U64(2)),
        ("decided".into(), JsonValue::U64(u64::from(decided))),
        ("state_hash".into(), JsonValue::str(format!("{:016x}", out.map_or(0, |o| o.state_hash)))),
        ("sim_ticks".into(), JsonValue::U64(ticks)),
        ("slots_applied".into(), JsonValue::U64(applied)),
        ("applied_bytes".into(), JsonValue::U64(sink.applied_bytes())),
        ("applied_tx_per_kilotick".into(), JsonValue::F64(applied as f64 * 1000.0 / ticks as f64)),
        ("checkpoints_proposed".into(), JsonValue::U64(sink.checkpoints_proposed())),
        ("checkpoints_certified".into(), JsonValue::U64(sink.checkpoints_certified())),
        (
            "checkpoint_latency_ticks".into(),
            JsonValue::Obj(vec![
                ("mean".into(), JsonValue::F64(latency.mean())),
                ("max".into(), JsonValue::F64(latency.max().unwrap_or(0.0))),
            ]),
        ),
        ("state_transfers_completed".into(), JsonValue::U64(sink.state_transfers_completed())),
        ("catch_up_bytes".into(), JsonValue::U64(sink.state_transfer_bytes())),
    ])
}

/// Epoch count for the throughput section by report mode: smoke stays
/// small enough for a cold CI runner, full gets a longer pipeline.
fn throughput_epochs(mode_label: &str) -> u64 {
    match mode_label {
        "smoke" => 5,
        "full" => 12,
        _ => 8,
    }
}

/// Assembles a full report document over the given configurations.
pub fn report_for(configs: &[BenchConfig], mode_label: &str, jobs: usize) -> JsonValue {
    let fragments: Vec<JsonValue> = configs.iter().map(|&c| run_config(c, jobs)).collect();
    JsonValue::Obj(vec![
        ("suite".into(), JsonValue::str("bracha")),
        ("mode".into(), JsonValue::str(mode_label)),
        ("schema_version".into(), JsonValue::U64(3)),
        ("configs".into(), JsonValue::Arr(fragments)),
        ("microbench".into(), microbench_section()),
        ("net_loopback".into(), net_loopback_section(3)),
        ("gateway".into(), gateway_section(mode_label)),
        ("throughput".into(), throughput_section(throughput_epochs(mode_label))),
        ("rbc_bytes".into(), rbc_bytes_section()),
        ("tracing".into(), tracing_section(throughput_epochs(mode_label))),
        ("state_machine".into(), state_machine_section(throughput_epochs(mode_label))),
    ])
}

/// The full `BENCH_bracha.json` document.
pub fn bracha_report(mode: Mode, jobs: usize) -> JsonValue {
    let label = if mode == Mode::Full { "full" } else { "quick" };
    report_for(&headline_configs(mode), label, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_both_headline_configs() {
        // The headline configs at smoke-sized wall-clock sections: the
        // quick/full gateway sweep climbs to n=64 (minutes per point in
        // release, far worse in a debug test binary), so the shape check
        // runs the same assembly path with the small smoke points.
        let report = report_for(&headline_configs(Mode::Quick), "smoke", 2);
        let rendered = report.to_string();
        assert!(rendered.contains("\"suite\":\"bracha\""));
        assert!(rendered.contains("\"n\":4"));
        assert!(rendered.contains("\"n\":16"));
        assert!(rendered.contains("\"round_latency\""));
        assert!(rendered.contains("\"messages_by_kind\""));
        assert!(rendered.contains("echo/echo"));
        assert!(rendered.contains("\"timing\""));
        assert!(rendered.contains("\"microbench\""));
        assert!(rendered.contains("\"net_loopback\""));
        assert!(rendered.contains("\"transport\":\"tcp-loopback\""));
        assert!(rendered.contains("\"transport\":\"tcp-loopback-reactor\""));
        assert!(rendered.contains("\"saturation_committed_tx_per_s\""));
    }

    #[test]
    fn every_quick_run_decides() {
        let fragment = run_config(BenchConfig { n: 4, seeds: 3 }, 1).to_string();
        assert!(fragment.contains("\"decided_runs\":3"));
    }

    /// The acceptance gate for the ordering tentpole: a deeper pipeline
    /// overlaps epoch `e + 1`'s broadcast with epoch `e`'s agreement, so
    /// the same workload completes in fewer simulated ticks — higher
    /// throughput at equal delivered payload count.
    #[test]
    fn deeper_pipeline_raises_sim_throughput() {
        let (_, txs_seq, ticks_seq, decided_seq) = ordering_run(5, 1);
        let (sink, txs_deep, ticks_deep, decided_deep) = ordering_run(5, 4);
        assert!(decided_seq && decided_deep);
        assert_eq!(txs_seq, txs_deep, "pipelining must not change what gets ordered");
        assert!(
            ticks_deep < ticks_seq,
            "depth 4 should finish faster than sequential: {ticks_deep} vs {ticks_seq} ticks"
        );
        assert!(sink.max_pipeline_occupancy() > 1, "the deep run must actually overlap epochs");
        assert_eq!(sink.epochs_committed(), 5 * 4, "5 epochs at each of 4 nodes");
    }

    #[test]
    fn report_contains_the_throughput_section() {
        let rendered = throughput_section(3).to_string();
        assert!(rendered.contains("\"protocol\":\"bracha-acs-order\""));
        assert!(rendered.contains("\"pipeline_depth\":1"));
        assert!(rendered.contains("\"pipeline_depth\":4"));
        assert!(rendered.contains("\"tx_per_kilotick\""));
        assert!(rendered.contains("\"epoch_commit_latency_ticks\""));
        assert!(rendered.contains("\"pipeline_occupancy\""));
    }

    /// The tracing section is complete (no open spans, no anomalies,
    /// every trace's critical path accounted) and deterministic.
    #[test]
    fn tracing_section_is_complete_and_deterministic() {
        let asm = tracing_run(3);
        assert_eq!(asm.open_spans(), 0, "quiescence must close every span");
        assert_eq!(asm.duplicate_starts() + asm.unmatched_ends(), 0);
        assert_eq!(asm.trace_count(), 3 * 4, "one trace per (proposer, epoch)");
        for trace in asm.trace_ids() {
            let root = asm.root(trace).expect("every trace has a submit root");
            let end = root.end.expect("root closed");
            let path = asm.critical_path(trace).expect("complete critical path");
            let total: u64 = path.iter().map(|&(_, t)| t).sum();
            assert_eq!(total, end - root.start, "attribution sums to submit latency");
        }
        let rendered = tracing_section(3).to_string();
        assert_eq!(rendered, tracing_section(3).to_string(), "same seed, same bytes");
        assert!(rendered.contains("\"phase\":\"commit\""));
        assert!(rendered.contains("\"aba_rounds_per_instance\""));
    }

    /// The tentpole acceptance gate: at n=16/f=5 with a 64 KiB payload,
    /// the erasure-coded broadcast ships at most 40% of Bracha's bytes,
    /// both protocols deliver everywhere, and the section is
    /// deterministic.
    #[test]
    fn coded_rbc_meets_the_headline_byte_budget() {
        let rendered = rbc_bytes_section().to_string();
        assert!(rendered.contains("\"coded_bytes_leq_40pct_of_bracha\":true"), "{rendered}");
        assert!(!rendered.contains("\"delivered\":false"), "{rendered}");
        assert!(rendered.contains("\"rbc-cecho\""));
        assert_eq!(rendered, rbc_bytes_section().to_string(), "same seed, same bytes");
    }

    /// The coded broadcast's win grows with the payload: at n=16 the
    /// per-cell byte ratio must shrink monotonically as the payload
    /// sweeps 1 → 16 → 64 KiB (fixed per-message overhead amortizes).
    #[test]
    fn coded_advantage_grows_with_payload() {
        use async_bft::rbc::RbcKind;
        let mut ratios = Vec::new();
        for &kib in &RBC_BYTES_PAYLOAD_KIB {
            let bracha = rbc_bytes_run(16, kib * 1024, RbcKind::Bracha);
            let coded = rbc_bytes_run(16, kib * 1024, RbcKind::Coded);
            assert!(bracha.delivered && coded.delivered, "payload {kib} KiB");
            ratios.push(coded.bytes_on_wire as f64 / bracha.bytes_on_wire as f64);
        }
        assert!(
            ratios.windows(2).all(|w| w[1] < w[0]),
            "byte ratio must shrink with payload size: {ratios:?}"
        );
    }

    /// The state-machine section exercises the full recovery path — a
    /// certified checkpoint, a crash, and a completed state transfer
    /// with nonzero catch-up bytes — and is deterministic.
    #[test]
    fn state_machine_section_recovers_and_is_deterministic() {
        let (sink, out, _, decided) = smr_run(4);
        assert!(decided, "every correct node, the restarted one included, must finish");
        let out = out.expect("unanimous state across incarnations");
        assert_eq!(out.epochs, 4);
        assert!(sink.checkpoints_certified() >= 1, "interval 2 over 4 epochs certifies");
        assert_eq!(sink.state_transfers_completed(), 1, "the victim rejoins via transfer");
        assert!(sink.state_transfer_bytes() > 0, "catch-up must ship state bytes");
        assert!(sink.slots_applied() > 0);
        let rendered = state_machine_section(4).to_string();
        assert_eq!(rendered, state_machine_section(4).to_string(), "same seed, same bytes");
        assert!(rendered.contains("\"protocol\":\"bracha-smr-kv\""));
        assert!(rendered.contains("\"applied_tx_per_kilotick\""));
        assert!(rendered.contains("\"checkpoint_latency_ticks\""));
        assert!(rendered.contains("\"catch_up_bytes\""));
    }

    /// The acceptance gate for the parallel driver: byte-identical
    /// deterministic aggregates no matter how many workers ran the seeds.
    #[test]
    fn parallel_aggregate_is_byte_identical_to_sequential() {
        let cfg = BenchConfig { n: 4, seeds: 8 };
        let sequential = run_config_outcome(cfg, 1).deterministic_fragment().to_string();
        for jobs in [2, 3, 8] {
            let parallel = run_config_outcome(cfg, jobs).deterministic_fragment().to_string();
            assert_eq!(sequential, parallel, "jobs={jobs} diverged from sequential");
        }
    }
}
