//! T5 — optimal resilience vs the prior art: Ben-Or (1983) needs
//! `n > 5f`; Bracha reaches `n ≥ 3f + 1`. The separating attack is
//! double-talk, which reliable broadcast makes impossible.

use crate::common::{fmt_mean, run_benor, ExperimentReport, Mode, Tally};
use async_bft::types::{Config, Value};
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
use bft_stats::Table;
use bracha::BrachaOptions;

/// Runs the T5 comparison.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(8, 30);
    let n = 16;
    // f = 3: both protocols inside their bounds (16 > 15 and 16 ≥ 10).
    // f = 5: Bracha exactly at its bound (16 ≥ 16); Ben-Or far beyond
    // (16 < 25).
    let fault_counts = [3usize, 5];

    let mut table = Table::new(vec![
        "protocol",
        "n",
        "f",
        "within bound",
        "terminated",
        "agreement",
        "validity",
        "mean rounds",
    ]);

    for &f in &fault_counts {
        // --- Ben-Or under f double-talkers ---
        let mut tally = Tally::default();
        for seed in 0..seeds as u64 {
            let report = run_benor(n, f, f, Value::One, seed, 60);
            tally.add(&report, Some(Value::One));
        }
        table.row(vec![
            "ben-or".into(),
            n.to_string(),
            f.to_string(),
            if n > 5 * f { "yes" } else { "NO" }.to_string(),
            tally.term_pct(),
            tally.agree_pct(),
            tally.valid_pct(),
            fmt_mean(&tally.rounds),
        ]);

        // --- Bracha under f liars (double-talk impossible under RBC;
        // flip-value is the strongest remaining analogue) ---
        let mut tally = Tally::default();
        for seed in 0..seeds as u64 {
            let config = Config::new_unchecked_resilience(n, f).expect("f < n");
            let report = Cluster::with_config(config)
                .seed(seed)
                .coin(CoinChoice::Local)
                .schedule(Schedule::FavorFaulty { favored: f, fast: 1, slow: 15 })
                .faults(f, FaultKind::FlipValue)
                .options(BrachaOptions { max_rounds: 60, ..BrachaOptions::default() })
                .max_delivered(3_000_000)
                .run();
            tally.add(&report, Some(Value::One));
        }
        table.row(vec![
            "bracha".into(),
            n.to_string(),
            f.to_string(),
            if n >= 3 * f + 1 { "yes" } else { "NO" }.to_string(),
            tally.term_pct(),
            tally.agree_pct(),
            tally.valid_pct(),
            fmt_mean(&tally.rounds),
        ]);
    }

    ExperimentReport {
        id: "T5",
        title: "resilience vs Ben-Or 1983".into(),
        claim: "Ben-Or breaks between n/5 and n/3 faults; Bracha holds up to ⌊(n−1)/3⌋".into(),
        table,
        notes: "expected shape: at f = 3 both rows perfect; at f = 5 Ben-Or degrades while \
                Bracha stays perfect"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracha_rows_stay_perfect() {
        let report = run(Mode::Quick);
        for line in report.table.render().lines().skip(2) {
            if line.contains("bracha") {
                assert_eq!(line.matches("100%").count(), 3, "bracha row failed: {line}");
            }
        }
    }

    #[test]
    fn benor_degrades_beyond_its_bound() {
        let report = run(Mode::Quick);
        let mut degraded = false;
        for line in report.table.render().lines().skip(2) {
            if line.contains("ben-or") && line.contains("NO") && line.matches("100%").count() < 3 {
                degraded = true;
            }
        }
        assert!(degraded, "ben-or must fail beyond n > 5f:\n{}", report.table.render());
    }
}
