//! The experiment harness binary: regenerates every table (T1–T8) and
//! figure (F1–F4) of the reproduction.
//!
//! ```text
//! experiments [--full] [--csv DIR] [--jobs N] [--smoke] [IDS...]
//!
//!   --full      publication-size sample counts (default: quick)
//!   --csv DIR   also write each table as DIR/<id>.csv
//!   --jobs N    worker threads for the per-seed BENCH runs
//!               (default: available parallelism; aggregates are
//!               byte-identical for every N)
//!   --smoke     CI smoke mode: skip the tables, write a small
//!               BENCH_bracha.json (n=4/f=1, 5 seeds) only
//!   IDS         subset of experiments to run (t1..t8, f1..f4);
//!               default: all
//! ```
//!
//! Every invocation also writes `BENCH_bracha.json` to the working
//! directory: machine-readable aggregated observer metrics (per-round
//! latency histograms, per-kind message/byte counts) for the headline
//! Bracha configurations n=4/f=1 and n=16/f=5, plus wall-clock timing
//! and hot-path microbench sections.

use bft_bench::{all_experiments, json_report, Mode};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::Quick;
    let mut csv_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut jobs: usize =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => mode = Mode::Full,
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }));
            }
            "--jobs" => {
                jobs = it.next().and_then(|v| v.parse().ok()).filter(|&j| j >= 1).unwrap_or_else(
                    || {
                        eprintln!("--jobs requires a positive integer argument");
                        std::process::exit(2);
                    },
                );
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--full] [--csv DIR] [--jobs N] [--smoke] [t1..t8 f1..f4]"
                );
                return;
            }
            id => wanted.push(id.to_ascii_lowercase()),
        }
    }

    if smoke {
        let started = std::time::Instant::now();
        let json =
            json_report::report_for(&json_report::smoke_configs(), "smoke", jobs).to_string();
        let path = "BENCH_bracha.json";
        match std::fs::write(path, format!("{json}\n")) {
            Ok(()) => {
                println!("wrote {path} ({} bytes) in {:.1?}", json.len() + 1, started.elapsed());
            }
            Err(e) => {
                eprintln!("failed writing {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(1);
        }
    }

    let experiments = all_experiments();
    let unknown: Vec<&String> =
        wanted.iter().filter(|w| !experiments.iter().any(|(id, _)| id == w)).collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment ids: {unknown:?} (expected t1..t8, f1..f4)");
        std::process::exit(2);
    }

    println!(
        "async-bft experiment harness — mode: {}\n",
        if mode == Mode::Full { "full" } else { "quick" }
    );

    for (id, runner) in experiments {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let started = std::time::Instant::now();
        let report = runner(mode);
        println!("{}", report.render());
        println!("   [{} finished in {:.1?}]\n", report.id, started.elapsed());
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{id}.csv");
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    if let Err(e) = f.write_all(report.table.to_csv().as_bytes()) {
                        eprintln!("failed writing {path}: {e}");
                    }
                }
                Err(e) => eprintln!("failed creating {path}: {e}"),
            }
        }
    }

    let started = std::time::Instant::now();
    let json = json_report::bracha_report(mode, jobs).to_string();
    let path = "BENCH_bracha.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("wrote {path} ({} bytes) in {:.1?}", json.len() + 1, started.elapsed()),
        Err(e) => {
            eprintln!("failed writing {path}: {e}");
            std::process::exit(1);
        }
    }
}
