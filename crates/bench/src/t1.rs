//! T1 — correctness at full resilience: agreement, validity and
//! probability-1 termination hold for every `f ≤ ⌊(n−1)/3⌋` against every
//! adversary class.

use crate::common::{fmt_mean, ExperimentReport, Mode, Tally};
use async_bft::types::Value;
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
use bft_stats::Table;

/// Runs the T1 matrix.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(8, 30);
    let sizes = match mode {
        Mode::Quick => vec![4usize, 7, 10],
        Mode::Full => vec![4, 7, 10, 13, 16, 19],
    };

    let mut table = Table::new(vec![
        "n",
        "f",
        "adversary",
        "runs",
        "terminated",
        "agreement",
        "validity",
        "mean rounds",
        "mean msgs",
    ]);

    for &n in &sizes {
        for kind in FaultKind::ALL {
            let mut tally = Tally::default();
            for seed in 0..seeds as u64 {
                let cluster = Cluster::new(n).expect("n >= 1");
                let f = cluster.config().f();
                // All correct nodes hold One so validity pins the outcome;
                // the adversaries push other values.
                let report = cluster
                    .seed(seed)
                    .coin(CoinChoice::Local)
                    .schedule(Schedule::Uniform { min: 1, max: 20 })
                    .faults(f, kind)
                    .run();
                tally.add(&report, Some(Value::One));
            }
            let f = (n - 1) / 3;
            table.row(vec![
                n.to_string(),
                f.to_string(),
                kind.describe().to_string(),
                tally.runs.to_string(),
                tally.term_pct(),
                tally.agree_pct(),
                tally.valid_pct(),
                fmt_mean(&tally.rounds),
                fmt_mean(&tally.msgs),
            ]);
        }
    }

    ExperimentReport {
        id: "T1",
        title: "correctness at optimal resilience (n ≥ 3f + 1)".into(),
        claim: "agreement, validity and termination hold for every adversary class at full f"
            .into(),
        table,
        notes: "expected shape: 100% / 100% / 100% on every row".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_t1_is_perfect() {
        let report = run(Mode::Quick);
        // Every row must read 100% / 100% / 100%.
        let rendered = report.table.render();
        for line in rendered.lines().skip(2) {
            assert!(line.matches("100%").count() == 3, "imperfect row in T1: {line}");
        }
    }
}
