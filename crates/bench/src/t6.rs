//! T6 — the modern-BFT extension: asynchronous common subset (ACS) built
//! from n reliable broadcasts + n binary agreements, as in HoneyBadgerBFT.

use crate::common::{ExperimentReport, Mode, Tally};
use bft_adversary::Silent;
use bft_coin::CommonCoin;
use bft_sim::{Report, UniformDelay, World, WorldConfig};
use bft_stats::{Samples, Table};
use bft_types::Config;
use bracha::acs::{AcsMessage, AcsOutput, AcsProcess};

fn run_acs(n: usize, crash_last: bool, payload_bytes: usize, seed: u64) -> Report<AcsOutput> {
    let cfg = Config::max_resilience(n).expect("n >= 1");
    let mut world =
        World::new(WorldConfig::new(n).max_delivered(5_000_000), UniformDelay::new(1, 10, seed));
    for id in cfg.nodes() {
        if crash_last && id.index() == n - 1 {
            world.add_faulty_process(Box::new(Silent::<AcsMessage, AcsOutput>::new(id)));
        } else {
            let proposal = vec![id.index() as u8; payload_bytes];
            let coins = (0..n).map(|i| CommonCoin::new(seed, i as u64)).collect();
            world.add_process(Box::new(AcsProcess::new(cfg, id, proposal, coins)));
        }
    }
    world.run()
}

/// Runs the T6 scan.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(5, 15);
    let sizes = match mode {
        Mode::Quick => vec![4usize, 7],
        Mode::Full => vec![4, 7, 10],
    };

    let mut table = Table::new(vec![
        "n",
        "crashed proposer",
        "runs",
        "completed",
        "agreement",
        "mean set size",
        "mean msgs",
        "mean latency (ticks)",
    ]);

    for &n in &sizes {
        for crash in [false, true] {
            let mut completed = 0usize;
            let mut agreed = 0usize;
            let mut set_sizes = Samples::new();
            let mut msgs = Samples::new();
            let mut latency = Samples::new();
            for seed in 0..seeds as u64 {
                let report = run_acs(n, crash, 64, seed);
                if report.all_correct_decided() {
                    completed += 1;
                    if let Some(t) = report.decision_latency() {
                        latency.add(t.ticks() as f64);
                    }
                    if let Some(set) = report.correct.first().and_then(|id| report.outputs.get(id))
                    {
                        set_sizes.add(set.len() as f64);
                    }
                }
                if report.agreement_holds() {
                    agreed += 1;
                }
                msgs.add(report.metrics.sent as f64);
            }
            table.row(vec![
                n.to_string(),
                if crash { "yes" } else { "no" }.to_string(),
                seeds.to_string(),
                Tally::pct(completed, seeds),
                Tally::pct(agreed, seeds),
                format!("{:.2}", set_sizes.mean()),
                format!("{:.0}", msgs.mean()),
                format!("{:.0}", latency.mean()),
            ]);
        }
    }

    ExperimentReport {
        id: "T6",
        title: "asynchronous common subset from Bracha primitives".into(),
        claim: "n RBCs + n ABAs agree on a common ≥ n−f subset of proposals despite faults".into(),
        table,
        notes: "expected shape: 100% completed and agreed; set size ≥ n − f (= n when nobody \
                crashes, typically n − 1 with one crashed proposer)"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acs_rows_complete_and_agree() {
        let report = run(Mode::Quick);
        for line in report.table.render().lines().skip(2) {
            assert!(line.matches("100%").count() >= 2, "ACS row failed: {line}");
        }
    }
}
