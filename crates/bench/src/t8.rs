//! T8 — ablation: message validation is load-bearing. The same liar
//! adversary that is harmless under full validation breaks the protocol
//! when validation is disabled (reliable broadcast alone is not enough).

use crate::common::{ExperimentReport, Mode, Tally};
use async_bft::types::Value;
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
use bft_stats::Table;
use bracha::BrachaOptions;

/// Runs the T8 ablation grid.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(10, 40);
    let n = 7;
    let f = 2;

    let mut table =
        Table::new(vec!["validation", "adversary", "runs", "terminated", "agreement", "validity"]);

    for validate in [true, false] {
        for kind in [FaultKind::FlipValue, FaultKind::Seesaw] {
            let mut tally = Tally::default();
            for seed in 0..seeds as u64 {
                let report = Cluster::new(n)
                    .expect("n >= 1")
                    .seed(seed)
                    .coin(CoinChoice::Local)
                    // Liar traffic first: the schedule that maximises the
                    // corrupted payloads' presence in every quorum.
                    .schedule(Schedule::FavorFaulty { favored: f, fast: 1, slow: 15 })
                    .faults(f, kind)
                    .options(BrachaOptions { validate, max_rounds: 60, ..BrachaOptions::default() })
                    .max_delivered(1_000_000)
                    .run();
                tally.add(&report, Some(Value::One));
            }
            table.row(vec![
                if validate { "on" } else { "OFF" }.to_string(),
                kind.describe().to_string(),
                tally.runs.to_string(),
                tally.term_pct(),
                tally.agree_pct(),
                tally.valid_pct(),
            ]);
        }
    }

    ExperimentReport {
        id: "T8",
        title: "ablation: reliable broadcast without validation".into(),
        claim: "validation (not just RBC) is what reduces Byzantine nodes to omission faults"
            .into(),
        table,
        notes: "expected shape: 'on' rows perfect; 'OFF' rows lose termination and/or validity"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_on_is_perfect_and_off_is_not() {
        let report = run(Mode::Quick);
        let rendered = report.table.render();
        let mut off_failed = false;
        for line in rendered.lines().skip(2) {
            if line.trim_start().starts_with("on") {
                assert_eq!(line.matches("100%").count(), 3, "validated row failed: {line}");
            } else if line.trim_start().starts_with("OFF") && line.matches("100%").count() < 3 {
                off_failed = true;
            }
        }
        assert!(off_failed, "validation-off must fail somewhere:\n{rendered}");
    }
}
