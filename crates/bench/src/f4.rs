//! F4 — the common coin decides in expected O(1) rounds independent of
//! `n`, even against the anti-coin scheduler.

use crate::common::{ExperimentReport, Mode};
use async_bft::{Cluster, CoinChoice, Schedule};
use bft_stats::{Histogram, Table};

/// Runs the F4 sweep.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(25, 80);
    let sizes = match mode {
        Mode::Quick => vec![4usize, 7, 10],
        Mode::Full => vec![4, 7, 10, 13, 16],
    };

    let mut table = Table::new(vec!["n", "runs", "mean rounds", "max rounds", "P[R > 3]"]);
    let mut notes = String::new();

    for &n in &sizes {
        let mut hist = Histogram::new();
        for seed in 0..seeds as u64 {
            let report = Cluster::new(n)
                .expect("n >= 1")
                .seed(seed)
                .split_inputs(n / 2)
                .coin(CoinChoice::Common)
                .schedule(Schedule::Split { fast: 1, slow: 8 })
                .run();
            let r = report.decision_round().expect("common-coin runs decide within budget");
            hist.add(r);
        }
        table.row(vec![
            n.to_string(),
            seeds.to_string(),
            format!("{:.2}", hist.mean()),
            hist.max().unwrap_or(0).to_string(),
            format!("{:.3}", hist.tail_probability(3)),
        ]);
        if n == *sizes.last().unwrap() {
            notes = format!(
                "round distribution at n = {n} (adversarial split schedule):\n{}",
                hist.render(40)
            );
        }
    }

    notes.push_str(
        "expected shape: mean rounds flat (≈ 2) across n; compare F2's growing local-coin \
         column",
    );

    ExperimentReport {
        id: "F4",
        title: "common-coin agreement is O(1) expected rounds".into(),
        claim: "with a shared unpredictable coin the adversary cannot stretch the round count"
            .into(),
        table,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rounds_are_flat_and_small() {
        let report = run(Mode::Quick);
        for line in report.table.render().lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let mean: f64 = cells[2].parse().unwrap();
            assert!(mean <= 5.0, "common-coin mean rounds too high: {line}");
        }
    }
}
