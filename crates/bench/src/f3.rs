//! F3 — the scheduler adversary can slow the protocol but not stop it:
//! rounds-to-decide under increasingly hostile schedules.

use crate::common::{ExperimentReport, Mode};
use async_bft::{Cluster, CoinChoice, Schedule};
use bft_stats::{Samples, Table};

/// Runs the F3 schedule comparison.
pub fn run(mode: Mode) -> ExperimentReport {
    let seeds = mode.seeds(25, 80);
    let n = 7;
    let schedules: Vec<(&str, Schedule)> = vec![
        ("fixed (synchronous-like)", Schedule::Fixed(1)),
        ("uniform 1-20", Schedule::Uniform { min: 1, max: 20 }),
        ("partition until t=300", Schedule::Partition { near: 1, far: 100, heal_at: 300 }),
        ("anti-coin split", Schedule::Split { fast: 1, slow: 8 }),
    ];

    let mut table = Table::new(vec![
        "schedule",
        "runs",
        "terminated",
        "mean rounds",
        "p95 rounds",
        "mean latency (ticks)",
    ]);

    for (label, schedule) in schedules {
        let mut rounds = Samples::new();
        let mut latency = Samples::new();
        let mut terminated = 0usize;
        for seed in 0..seeds as u64 {
            let report = Cluster::new(n)
                .expect("n >= 1")
                .seed(seed)
                .split_inputs(n / 2)
                .coin(CoinChoice::Local)
                .schedule(schedule)
                .run();
            if let Some(r) = report.decision_round() {
                terminated += 1;
                rounds.add(r as f64);
                latency.add(report.decision_latency().unwrap().ticks() as f64);
            }
        }
        table.row(vec![
            label.to_string(),
            seeds.to_string(),
            crate::common::Tally::pct(terminated, seeds),
            format!("{:.2}", rounds.mean()),
            format!("{:.1}", rounds.percentile(95.0).unwrap_or(0.0)),
            format!("{:.0}", latency.mean()),
        ]);
    }

    ExperimentReport {
        id: "F3",
        title: "impact of the scheduling adversary (n = 7, local coin)".into(),
        claim: "asynchrony and adversarial scheduling cost rounds/latency but never safety or \
                probability-1 termination"
            .into(),
        table,
        notes: "expected shape: 100% terminated on every row; rounds/latency grow toward the \
                anti-coin schedule"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schedules_terminate() {
        let report = run(Mode::Quick);
        for line in report.table.render().lines().skip(2) {
            assert!(line.contains("100%"), "non-termination under a schedule: {line}");
        }
    }
}
