//! T3 — message complexity: reliable broadcast costs O(n²) messages per
//! instance, the consensus protocol O(n³) per round (n RBC instances per
//! step, three steps).

use crate::common::{ExperimentReport, Mode};
use async_bft::{Cluster, CoinChoice, Schedule};
use bft_rbc::RbcProcess;
use bft_sim::{FixedDelay, World, WorldConfig};
use bft_stats::Table;
use bft_types::{Config, NodeId};

/// Messages for one reliable-broadcast instance with a correct sender.
fn rbc_messages(n: usize) -> u64 {
    let cfg = Config::max_resilience(n).expect("n >= 1");
    let sender = NodeId::new(0);
    let mut world = World::new(WorldConfig::new(n), FixedDelay::new(1));
    for id in cfg.nodes() {
        let payload = (id == sender).then(|| "m".to_string());
        world.add_process(Box::new(RbcProcess::new(cfg, id, sender, payload)));
    }
    let report = world.run();
    assert!(report.all_correct_decided(), "clean RBC must deliver");
    report.metrics.sent
}

/// Messages per consensus round (unanimous inputs decide in round 1, so
/// total messages ≈ one round's worth plus the wind-down).
fn consensus_messages_per_round(n: usize, seed: u64) -> (f64, u64) {
    let report = Cluster::new(n)
        .expect("n >= 1")
        .seed(seed)
        .coin(CoinChoice::Local)
        .schedule(Schedule::Fixed(1))
        .run();
    let rounds = report.max_round.max(1);
    (report.metrics.sent as f64 / rounds as f64, rounds)
}

/// Runs the T3 complexity scan.
pub fn run(mode: Mode) -> ExperimentReport {
    let sizes = match mode {
        Mode::Quick => vec![4usize, 7, 10, 13],
        Mode::Full => vec![4, 7, 10, 13, 16, 19, 25],
    };

    let mut table = Table::new(vec![
        "n",
        "rbc msgs",
        "rbc / n^2",
        "consensus msgs/round",
        "consensus / n^3",
        "fitted exponent (vs prev n)",
    ]);

    let mut prev: Option<(usize, f64)> = None;
    for &n in &sizes {
        let rbc = rbc_messages(n);
        let (per_round, _) = consensus_messages_per_round(n, 7);
        let exponent = prev
            .map(|(pn, pm)| {
                let e = (per_round / pm).ln() / (n as f64 / pn as f64).ln();
                format!("{e:.2}")
            })
            .unwrap_or_else(|| "-".to_string());
        table.row(vec![
            n.to_string(),
            rbc.to_string(),
            format!("{:.2}", rbc as f64 / (n * n) as f64),
            format!("{per_round:.0}"),
            format!("{:.2}", per_round / (n * n * n) as f64),
            exponent,
        ]);
        prev = Some((n, per_round));
    }

    ExperimentReport {
        id: "T3",
        title: "message complexity".into(),
        claim: "RBC is O(n²) per instance; consensus is O(n³) per round".into(),
        table,
        notes: "expected shape: the /n² and /n³ columns stay roughly constant; the fitted \
                exponent approaches 3 for consensus"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbc_message_count_is_quadratic() {
        let m4 = rbc_messages(4) as f64;
        let m8 = rbc_messages(8) as f64;
        let exponent = (m8 / m4).ln() / 2f64.ln();
        assert!((1.5..=2.5).contains(&exponent), "RBC exponent should be ≈2, got {exponent:.2}");
    }

    #[test]
    fn consensus_per_round_is_cubic_ish() {
        let (m4, _) = consensus_messages_per_round(4, 1);
        let (m8, _) = consensus_messages_per_round(8, 1);
        let exponent = (m8 / m4).ln() / 2f64.ln();
        assert!(
            (2.2..=3.5).contains(&exponent),
            "consensus exponent should be ≈3, got {exponent:.2}"
        );
    }
}
