//! Property tests of the MMR-style modern ABA under proptest-driven
//! adversarial interleavings and fault mixes.

use async_bft::adversary::MmrSaboteur;
use async_bft::coin::CommonCoin;
use async_bft::consensus::mmr::MmrProcess;
use async_bft::sim::{UniformDelay, World, WorldConfig};
use async_bft::types::{Config, Value};
use proptest::prelude::*;

fn run_mmr(
    n: usize,
    saboteurs: usize,
    ones: usize,
    seed: u64,
    delay_max: u64,
) -> async_bft::sim::Report<Value> {
    let cfg = Config::max_resilience(n).unwrap();
    let mut world = World::new(
        WorldConfig::new(n).max_delivered(2_000_000),
        UniformDelay::new(1, delay_max.max(1), seed),
    );
    for id in cfg.nodes() {
        if id.index() < saboteurs {
            world.add_faulty_process(Box::new(MmrSaboteur::new(
                id,
                Value::from_bool(seed.is_multiple_of(2)),
                seed,
            )));
        } else {
            let input = Value::from_bool(id.index() < saboteurs + ones);
            world.add_process(Box::new(MmrProcess::new(
                cfg,
                id,
                input,
                CommonCoin::new(seed, 0),
                5_000,
            )));
        }
    }
    world.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Agreement + termination for arbitrary fault counts up to f, input
    /// splits, seeds and delay spreads.
    #[test]
    fn mmr_agreement_and_termination(
        n in 4usize..11,
        seed in 0u64..10_000,
        ones_frac in 0usize..12,
        sab_frac in 0usize..4,
        delay_max in 2u64..40,
    ) {
        let f = (n - 1) / 3;
        let saboteurs = if f == 0 { 0 } else { sab_frac % (f + 1) };
        let correct = n - saboteurs;
        let ones = ones_frac % (correct + 1);
        let report = run_mmr(n, saboteurs, ones, seed, delay_max);
        prop_assert!(report.all_correct_decided(), "termination failed");
        prop_assert!(report.agreement_holds(), "agreement failed");
    }

    /// Validity under unanimity, with the full budget of saboteurs
    /// forging the opposite Finish value.
    #[test]
    fn mmr_validity_under_unanimity(
        n in 4usize..11,
        seed in 0u64..10_000,
        value in proptest::bool::ANY,
    ) {
        let f = (n - 1) / 3;
        let v = Value::from_bool(value);
        let cfg = Config::max_resilience(n).unwrap();
        let mut world = World::new(
            WorldConfig::new(n).max_delivered(2_000_000),
            UniformDelay::new(1, 20, seed),
        );
        for id in cfg.nodes() {
            if id.index() < f {
                // Saboteurs forge Finish on the *opposite* value.
                world.add_faulty_process(Box::new(MmrSaboteur::new(id, v.flipped(), seed)));
            } else {
                world.add_process(Box::new(MmrProcess::new(
                    cfg,
                    id,
                    v,
                    CommonCoin::new(seed, 0),
                    5_000,
                )));
            }
        }
        let report = world.run();
        prop_assert!(report.all_correct_decided(), "termination failed");
        prop_assert_eq!(report.unanimous_output(), Some(v), "validity failed");
    }

    /// Determinism of the simulated runs.
    #[test]
    fn mmr_runs_are_reproducible(
        n in 4usize..9,
        seed in 0u64..1_000,
        ones in 0usize..9,
    ) {
        let a = run_mmr(n, 0, ones.min(n), seed, 20);
        let b = run_mmr(n, 0, ones.min(n), seed, 20);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.metrics.sent, b.metrics.sent);
        prop_assert_eq!(a.end_time, b.end_time);
    }
}

/// The Finish gadget actually halts the whole cluster (not just the
/// deciders) — regression net for the coin-mismatch liveness trap.
#[test]
fn finish_gadget_halts_everyone() {
    use async_bft::sim::StopPolicy;
    for seed in 0..10u64 {
        let n = 7;
        let cfg = Config::new(n, 2).unwrap();
        let mut world = World::new(
            WorldConfig::new(n).stop_policy(StopPolicy::AllCorrectHalted),
            UniformDelay::new(1, 15, seed),
        );
        for id in cfg.nodes() {
            let input = Value::from_bool(id.index() % 2 == 0);
            world.add_process(Box::new(MmrProcess::new(
                cfg,
                id,
                input,
                CommonCoin::new(seed, 0),
                5_000,
            )));
        }
        let report = world.run();
        assert_eq!(
            report.stop,
            async_bft::sim::StopReason::Completed,
            "seed {seed}: every node must halt, not merely decide"
        );
        assert!(report.all_correct_decided(), "seed {seed}");
        assert!(report.agreement_holds(), "seed {seed}");
    }
}

/// MMR and Bracha clusters given the same inputs agree *internally*; the
/// two protocols need not agree with each other (different coins), but
/// both must deliver the three properties side by side.
#[test]
fn mmr_and_bracha_side_by_side() {
    use async_bft::consensus::{BrachaOptions, BrachaProcess};

    for seed in 0..5u64 {
        let n = 7;
        let cfg = Config::new(n, 2).unwrap();

        let mut mmr_world = World::new(WorldConfig::new(n), UniformDelay::new(1, 15, seed));
        let mut bracha_world = World::new(WorldConfig::new(n), UniformDelay::new(1, 15, seed));
        for id in cfg.nodes() {
            let input = Value::from_bool(id.index() < 3);
            mmr_world.add_process(Box::new(MmrProcess::new(
                cfg,
                id,
                input,
                CommonCoin::new(seed, 1),
                5_000,
            )));
            bracha_world.add_process(Box::new(BrachaProcess::new(
                cfg,
                id,
                input,
                CommonCoin::new(seed, 2),
                BrachaOptions::default(),
            )));
        }
        let mmr_report = mmr_world.run();
        let bracha_report = bracha_world.run();
        assert!(mmr_report.all_correct_decided() && mmr_report.agreement_holds());
        assert!(bracha_report.all_correct_decided() && bracha_report.agreement_holds());
        // And MMR should be the cheaper of the two.
        assert!(
            mmr_report.metrics.sent < bracha_report.metrics.sent,
            "seed {seed}: MMR must cost fewer messages"
        );
    }
}
