//! The same protocol code must satisfy the same properties under the
//! deterministic simulator and under the thread actor runtime — the
//! "transport-agnostic" claim, tested end to end.

use async_bft::coin::{CommonCoin, LocalCoin};
use async_bft::consensus::{BrachaOptions, BrachaProcess};
use async_bft::rbc::RbcProcess;
use async_bft::runtime::Runtime;
use async_bft::sim::{UniformDelay, World, WorldConfig};
use async_bft::types::{Config, NodeId, Value};
use std::time::Duration;

fn inputs(n: usize) -> Vec<Value> {
    (0..n).map(|i| if i % 2 == 0 { Value::One } else { Value::Zero }).collect()
}

#[test]
fn consensus_properties_hold_in_both_transports() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let ins = inputs(n);

    // --- simulator ---
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 15, 5));
    for id in cfg.nodes() {
        world.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            ins[id.index()],
            LocalCoin::new(5, id),
            BrachaOptions::default(),
        )));
    }
    let sim_report = world.run();
    assert!(sim_report.all_correct_decided());
    assert!(sim_report.agreement_holds());

    // --- thread runtime ---
    let mut rt = Runtime::new(n).timeout(Duration::from_secs(30)).jitter_us(100);
    for id in cfg.nodes() {
        rt.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            ins[id.index()],
            LocalCoin::new(5, id),
            BrachaOptions::default(),
        )));
    }
    let rt_report = rt.run();
    assert!(!rt_report.timed_out);
    assert!(rt_report.all_correct_decided());
    assert!(rt_report.agreement_holds());
}

#[test]
fn common_coin_consensus_runs_on_threads() {
    let n = 7;
    let cfg = Config::new(n, 2).unwrap();
    let ins = inputs(n);
    let mut rt = Runtime::new(n).timeout(Duration::from_secs(30));
    for id in cfg.nodes() {
        rt.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            ins[id.index()],
            CommonCoin::new(9, 0),
            BrachaOptions::default(),
        )));
    }
    let report = rt.run();
    assert!(!report.timed_out);
    assert!(report.all_correct_decided());
    assert!(report.agreement_holds());
}

#[test]
fn reliable_broadcast_runs_on_threads() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let sender = NodeId::new(0);
    let mut rt = Runtime::new(n).timeout(Duration::from_secs(30));
    for id in cfg.nodes() {
        let payload = (id == sender).then(|| "threaded payload".to_string());
        rt.add_process(Box::new(RbcProcess::new(cfg, id, sender, payload)));
    }
    let report = rt.run();
    assert!(!report.timed_out);
    assert_eq!(report.unanimous_output(), Some("threaded payload".to_string()));
}

/// Repeated runtime executions (different interleavings each time) keep
/// the properties.
#[test]
fn repeated_threaded_runs_stay_correct() {
    for round in 0..5 {
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let ins = inputs(n);
        let mut rt = Runtime::new(n).timeout(Duration::from_secs(30)).jitter_us(50);
        for id in cfg.nodes() {
            rt.add_process(Box::new(BrachaProcess::new(
                cfg,
                id,
                ins[id.index()],
                LocalCoin::new(round, id),
                BrachaOptions::default(),
            )));
        }
        let report = rt.run();
        assert!(!report.timed_out, "round {round}");
        assert!(report.all_correct_decided(), "round {round}");
        assert!(report.agreement_holds(), "round {round}");
    }
}
