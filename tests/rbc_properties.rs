//! Property tests of reliable broadcast at the state-machine level: a
//! proptest-driven adversary controls both the delivery order and a fully
//! Byzantine sender's messages, and agreement/totality must still hold.

use async_bft::rbc::{CodedInstance, RbcAction, RbcInstance, RbcMessage};
use async_bft::types::{Config, NodeId};
use proptest::prelude::*;

/// One in-flight message of the hand-rolled network.
#[derive(Clone, Debug)]
struct InFlight {
    from: NodeId,
    to: usize,
    msg: RbcMessage<u8>,
}

/// Runs a single RBC instance across `n` nodes where node 0 is Byzantine:
/// it injects the given raw messages instead of following the protocol.
/// Delivery order is chosen by `picks` (each pick selects the next
/// in-flight message modulo queue length).
///
/// Returns the payload delivered by each correct node (None = no
/// delivery).
fn run_adversarial_rbc(
    n: usize,
    injections: &[(usize, u8, u8)], // (target node, payload, phase 0/1/2)
    picks: &[u16],
) -> Vec<Option<u8>> {
    let cfg = Config::max_resilience(n).unwrap();
    let sender = NodeId::new(0);
    let mut instances: Vec<RbcInstance<u8>> =
        (1..n).map(|i| RbcInstance::new(cfg, NodeId::new(i), sender)).collect();
    let mut delivered: Vec<Option<u8>> = vec![None; n - 1];

    let mut queue: Vec<InFlight> = Vec::new();
    // The Byzantine sender's injections enter the network first.
    for &(to, payload, phase) in injections {
        let msg = match phase % 3 {
            0 => RbcMessage::Send(payload % 2),
            1 => RbcMessage::Echo(payload % 2),
            _ => RbcMessage::Ready(payload % 2),
        };
        queue.push(InFlight { from: sender, to: 1 + (to % (n - 1)), msg });
    }

    let mut steps = 0usize;
    let mut pick_idx = 0usize;
    while !queue.is_empty() && steps < 10_000 {
        steps += 1;
        let pick = if pick_idx < picks.len() { picks[pick_idx] as usize % queue.len() } else { 0 };
        pick_idx += 1;
        let inflight = queue.remove(pick);
        let slot = inflight.to - 1;
        let actions = instances[slot].on_message(inflight.from, &inflight.msg);
        let me = NodeId::new(inflight.to);
        for action in actions {
            match action {
                RbcAction::Broadcast(msg) => {
                    for to in 1..n {
                        queue.push(InFlight { from: me, to, msg: msg.clone() });
                    }
                }
                RbcAction::Send { to, msg } => {
                    queue.push(InFlight { from: me, to: to.index(), msg });
                }
                RbcAction::Deliver(p) => delivered[slot] = Some(p),
            }
        }
    }
    delivered
}

/// One in-flight message of the coded-RBC network (byte payloads).
#[derive(Clone, Debug)]
struct CodedInFlight {
    from: NodeId,
    to: usize,
    msg: RbcMessage<Vec<u8>>,
}

/// Runs one erasure-coded RBC instance across `n` correct nodes with a
/// correct designated sender (node 0) broadcasting `payload`, delivering
/// messages in the adversarial order chosen by `picks`. Returns each
/// node's delivered payload.
fn run_scheduled_coded(n: usize, payload: &[u8], picks: &[u16]) -> Vec<Option<Vec<u8>>> {
    let cfg = Config::max_resilience(n).unwrap();
    let sender = NodeId::new(0);
    let mut instances: Vec<CodedInstance<Vec<u8>>> =
        (0..n).map(|i| CodedInstance::new(cfg, NodeId::new(i), sender)).collect();
    let mut delivered: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut queue: Vec<CodedInFlight> = Vec::new();

    let enqueue = |from: NodeId,
                   actions: Vec<RbcAction<Vec<u8>>>,
                   queue: &mut Vec<CodedInFlight>,
                   delivered: &mut Vec<Option<Vec<u8>>>| {
        for action in actions {
            match action {
                RbcAction::Broadcast(msg) => {
                    for to in 0..n {
                        if to != from.index() {
                            queue.push(CodedInFlight { from, to, msg: msg.clone() });
                        }
                    }
                }
                RbcAction::Send { to, msg } => {
                    queue.push(CodedInFlight { from, to: to.index(), msg });
                }
                RbcAction::Deliver(p) => delivered[from.index()] = Some(p),
            }
        }
    };

    let start = instances[0].start(payload.to_vec());
    enqueue(sender, start, &mut queue, &mut delivered);

    let mut steps = 0usize;
    let mut pick_idx = 0usize;
    while !queue.is_empty() && steps < 100_000 {
        steps += 1;
        let pick = if pick_idx < picks.len() { picks[pick_idx] as usize % queue.len() } else { 0 };
        pick_idx += 1;
        let inflight = queue.remove(pick);
        let me = NodeId::new(inflight.to);
        let actions = instances[inflight.to].on_message(inflight.from, &inflight.msg);
        enqueue(me, actions, &mut queue, &mut delivered);
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Agreement: no interleaving and no Byzantine sender behaviour makes
    /// two correct nodes deliver different payloads.
    #[test]
    fn rbc_agreement_under_full_byzantine_sender(
        n in 4usize..8,
        injections in proptest::collection::vec((0usize..8, 0u8..2, 0u8..3), 0..24),
        picks in proptest::collection::vec(0u16..1000, 0..64),
    ) {
        let delivered = run_adversarial_rbc(n, &injections, &picks);
        let values: Vec<u8> = delivered.iter().flatten().copied().collect();
        if let Some(first) = values.first() {
            prop_assert!(
                values.iter().all(|v| v == first),
                "correct nodes delivered different payloads: {delivered:?}"
            );
        }
    }

    /// Totality: once the queue has fully drained, delivery is
    /// all-or-none among correct nodes (a drained queue = no more
    /// messages will ever arrive, so "eventually" has elapsed).
    #[test]
    fn rbc_totality_under_full_byzantine_sender(
        n in 4usize..8,
        injections in proptest::collection::vec((0usize..8, 0u8..2, 0u8..3), 0..24),
        picks in proptest::collection::vec(0u16..1000, 0..64),
    ) {
        let delivered = run_adversarial_rbc(n, &injections, &picks);
        let count = delivered.iter().flatten().count();
        prop_assert!(
            count == 0 || count == delivered.len(),
            "partial delivery (totality violation): {delivered:?}"
        );
    }

    /// Validity: with a *correct* sender (exactly one consistent Send to
    /// every node) every correct node delivers that payload, under any
    /// interleaving.
    #[test]
    fn rbc_validity_with_correct_sender(
        n in 4usize..8,
        payload in 0u8..2,
        picks in proptest::collection::vec(0u16..1000, 0..256),
    ) {
        // A correct sender = one Send per node, consistent payload.
        let injections: Vec<(usize, u8, u8)> =
            (0..n - 1).map(|i| (i, payload, 0)).collect();
        let delivered = run_adversarial_rbc(n, &injections, &picks);
        prop_assert!(
            delivered.iter().all(|d| *d == Some(payload % 2)),
            "validity failed: {delivered:?}"
        );
    }

    /// Differential: the erasure-coded broadcast delivers the exact bytes
    /// the Bracha broadcast would, at every node, under any adversarial
    /// delivery order — the two implementations are interchangeable
    /// behind the mux.
    #[test]
    fn coded_rbc_delivers_byte_identical_to_bracha(
        n in 4usize..8,
        payload in proptest::collection::vec(0u8..255, 0..300),
        picks in proptest::collection::vec(0u16..1000, 0..512),
    ) {
        let coded = run_scheduled_coded(n, &payload, &picks);
        prop_assert!(
            coded.iter().all(|d| d.as_deref() == Some(payload.as_slice())),
            "coded broadcast diverged from the broadcast payload: {coded:?}"
        );
        // Bracha under the same schedule and payload: both protocols
        // deliver the identical byte string everywhere (Bracha trivially
        // so — the assertion pins the differential claim).
        let bracha_injections: Vec<(usize, u8, u8)> =
            (0..n - 1).map(|i| (i, 1, 0)).collect();
        let bracha = run_adversarial_rbc(n, &bracha_injections, &picks);
        prop_assert!(bracha.iter().all(|d| *d == Some(1)));
    }

    /// Agreement + totality of the coded broadcast when a Byzantine peer
    /// (node 1, not the sender) floods corrupted fragments and fake
    /// readies for random roots: at queue drain, every correct node that
    /// delivered got the sender's bytes, and they all did or none did.
    #[test]
    fn coded_rbc_safe_under_fragment_corruption(
        n in 4usize..8,
        payload in proptest::collection::vec(0u8..255, 1..200),
        junk_roots in proptest::collection::vec(0u64..1_000_000, 0..12),
        picks in proptest::collection::vec(0u16..1000, 0..512),
    ) {
        let cfg = Config::max_resilience(n).unwrap();
        let sender = NodeId::new(0);
        let byz = NodeId::new(1);
        let mut instances: Vec<CodedInstance<Vec<u8>>> =
            (0..n).map(|i| CodedInstance::new(cfg, NodeId::new(i), sender)).collect();
        let mut delivered: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut queue: Vec<CodedInFlight> = Vec::new();

        // The Byzantine peer's junk enters the network first: fake
        // readies for arbitrary roots and corrupted echo fragments.
        let k = cfg.reconstruct_threshold();
        let coded = async_bft::ec::encode(&payload, n, k).unwrap();
        for (j, root) in junk_roots.iter().enumerate() {
            let to = 2 + (j % (n - 2));
            queue.push(CodedInFlight {
                from: byz,
                to,
                msg: RbcMessage::CodedReady { root: *root },
            });
            let mut frag = coded.fragments[byz.index()].clone();
            if let Some(b) = frag.shard.first_mut() {
                *b ^= (*root as u8) | 1;
            }
            queue.push(CodedInFlight {
                from: byz,
                to,
                msg: RbcMessage::CodedEcho { root: coded.root, fragment: frag },
            });
        }

        let enqueue = |from: NodeId,
                       actions: Vec<RbcAction<Vec<u8>>>,
                       queue: &mut Vec<CodedInFlight>,
                       delivered: &mut Vec<Option<Vec<u8>>>| {
            for action in actions {
                match action {
                    RbcAction::Broadcast(msg) => {
                        for to in 0..n {
                            if to != from.index() && to != byz.index() {
                                queue.push(CodedInFlight { from, to, msg: msg.clone() });
                            }
                        }
                    }
                    RbcAction::Send { to, msg } => {
                        if to != byz {
                            queue.push(CodedInFlight { from, to: to.index(), msg });
                        }
                    }
                    RbcAction::Deliver(p) => delivered[from.index()] = Some(p),
                }
            }
        };

        let start = instances[0].start(payload.clone());
        enqueue(sender, start, &mut queue, &mut delivered);

        let mut steps = 0usize;
        let mut pick_idx = 0usize;
        while !queue.is_empty() && steps < 100_000 {
            steps += 1;
            let pick =
                if pick_idx < picks.len() { picks[pick_idx] as usize % queue.len() } else { 0 };
            pick_idx += 1;
            let inflight = queue.remove(pick);
            let me = NodeId::new(inflight.to);
            let actions = instances[inflight.to].on_message(inflight.from, &inflight.msg);
            enqueue(me, actions, &mut queue, &mut delivered);
        }

        // Agreement: anything delivered is the sender's payload.
        for (i, d) in delivered.iter().enumerate() {
            if i != byz.index() {
                if let Some(bytes) = d {
                    prop_assert_eq!(bytes, &payload, "node {} delivered corrupted bytes", i);
                }
            }
        }
        // Totality at drain: all-or-none among correct nodes.
        let count =
            delivered.iter().enumerate().filter(|(i, d)| *i != byz.index() && d.is_some()).count();
        prop_assert!(
            count == 0 || count == n - 1,
            "partial delivery (totality violation): {delivered:?}"
        );
    }
}
