//! Property tests of reliable broadcast at the state-machine level: a
//! proptest-driven adversary controls both the delivery order and a fully
//! Byzantine sender's messages, and agreement/totality must still hold.

use async_bft::rbc::{RbcAction, RbcInstance, RbcMessage};
use async_bft::types::{Config, NodeId};
use proptest::prelude::*;

/// One in-flight message of the hand-rolled network.
#[derive(Clone, Debug)]
struct InFlight {
    from: NodeId,
    to: usize,
    msg: RbcMessage<u8>,
}

/// Runs a single RBC instance across `n` nodes where node 0 is Byzantine:
/// it injects the given raw messages instead of following the protocol.
/// Delivery order is chosen by `picks` (each pick selects the next
/// in-flight message modulo queue length).
///
/// Returns the payload delivered by each correct node (None = no
/// delivery).
fn run_adversarial_rbc(
    n: usize,
    injections: &[(usize, u8, u8)], // (target node, payload, phase 0/1/2)
    picks: &[u16],
) -> Vec<Option<u8>> {
    let cfg = Config::max_resilience(n).unwrap();
    let sender = NodeId::new(0);
    let mut instances: Vec<RbcInstance<u8>> =
        (1..n).map(|i| RbcInstance::new(cfg, NodeId::new(i), sender)).collect();
    let mut delivered: Vec<Option<u8>> = vec![None; n - 1];

    let mut queue: Vec<InFlight> = Vec::new();
    // The Byzantine sender's injections enter the network first.
    for &(to, payload, phase) in injections {
        let msg = match phase % 3 {
            0 => RbcMessage::Send(payload % 2),
            1 => RbcMessage::Echo(payload % 2),
            _ => RbcMessage::Ready(payload % 2),
        };
        queue.push(InFlight { from: sender, to: 1 + (to % (n - 1)), msg });
    }

    let mut steps = 0usize;
    let mut pick_idx = 0usize;
    while !queue.is_empty() && steps < 10_000 {
        steps += 1;
        let pick = if pick_idx < picks.len() { picks[pick_idx] as usize % queue.len() } else { 0 };
        pick_idx += 1;
        let inflight = queue.remove(pick);
        let slot = inflight.to - 1;
        let actions = instances[slot].on_message(inflight.from, &inflight.msg);
        let me = NodeId::new(inflight.to);
        for action in actions {
            match action {
                RbcAction::Broadcast(msg) => {
                    for to in 1..n {
                        queue.push(InFlight { from: me, to, msg: msg.clone() });
                    }
                }
                RbcAction::Deliver(p) => delivered[slot] = Some(p),
            }
        }
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Agreement: no interleaving and no Byzantine sender behaviour makes
    /// two correct nodes deliver different payloads.
    #[test]
    fn rbc_agreement_under_full_byzantine_sender(
        n in 4usize..8,
        injections in proptest::collection::vec((0usize..8, 0u8..2, 0u8..3), 0..24),
        picks in proptest::collection::vec(0u16..1000, 0..64),
    ) {
        let delivered = run_adversarial_rbc(n, &injections, &picks);
        let values: Vec<u8> = delivered.iter().flatten().copied().collect();
        if let Some(first) = values.first() {
            prop_assert!(
                values.iter().all(|v| v == first),
                "correct nodes delivered different payloads: {delivered:?}"
            );
        }
    }

    /// Totality: once the queue has fully drained, delivery is
    /// all-or-none among correct nodes (a drained queue = no more
    /// messages will ever arrive, so "eventually" has elapsed).
    #[test]
    fn rbc_totality_under_full_byzantine_sender(
        n in 4usize..8,
        injections in proptest::collection::vec((0usize..8, 0u8..2, 0u8..3), 0..24),
        picks in proptest::collection::vec(0u16..1000, 0..64),
    ) {
        let delivered = run_adversarial_rbc(n, &injections, &picks);
        let count = delivered.iter().flatten().count();
        prop_assert!(
            count == 0 || count == delivered.len(),
            "partial delivery (totality violation): {delivered:?}"
        );
    }

    /// Validity: with a *correct* sender (exactly one consistent Send to
    /// every node) every correct node delivers that payload, under any
    /// interleaving.
    #[test]
    fn rbc_validity_with_correct_sender(
        n in 4usize..8,
        payload in 0u8..2,
        picks in proptest::collection::vec(0u16..1000, 0..256),
    ) {
        // A correct sender = one Send per node, consistent payload.
        let injections: Vec<(usize, u8, u8)> =
            (0..n - 1).map(|i| (i, payload, 0)).collect();
        let delivered = run_adversarial_rbc(n, &injections, &picks);
        prop_assert!(
            delivered.iter().all(|d| *d == Some(payload % 2)),
            "validity failed: {delivered:?}"
        );
    }
}
