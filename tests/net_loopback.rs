//! End-to-end consensus over real loopback TCP — the acceptance gate for
//! the `bft-net` transport.
//!
//! The *unmodified* protocol processes (the same boxes the simulator and
//! the thread runtime drive) run over actual sockets: framed wire codec,
//! authenticated handshake, full-mesh peer manager. The suite covers the
//! happy path with a Byzantine node, the same run under 10% frame drop
//! chaos, a mid-run listener outage that exercises the reconnect/replay
//! machinery, and reliable broadcast with a string payload.
//!
//! These tests open real sockets and real threads; CI runs them
//! single-threaded (`--test-threads=1`) under a hard timeout.

use async_bft::adversary::{make_bracha_adversary, FaultKind};
use async_bft::coin::LocalCoin;
use async_bft::consensus::{BrachaOptions, BrachaProcess, Wire};
use async_bft::net::{ChaosConfig, LinkOutage, ListenerBounce, NetRuntime};
use async_bft::obs::{Event, MetricsSink, Obs, VecSink};
use async_bft::rbc::{CodedProcess, RbcProcess};
use async_bft::types::{Config, NodeId, Value};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

/// Builds the standard n=4, f=1 cluster: three correct nodes with
/// unanimous input `One` and one Byzantine `FlipValue` node, all over
/// loopback TCP.
fn byzantine_cluster(rt: &mut NetRuntime<Wire, Value>, seed: u64) -> Config {
    let cfg = Config::new(4, 1).expect("4 >= 3f + 1");
    let liar = NodeId::new(3);
    for id in cfg.nodes() {
        if id == liar {
            rt.add_faulty_process(make_bracha_adversary(
                FaultKind::FlipValue,
                cfg,
                id,
                Value::One,
                seed,
            ));
        } else {
            rt.add_process(Box::new(BrachaProcess::new(
                cfg,
                id,
                Value::One,
                LocalCoin::new(seed, id),
                BrachaOptions::default(),
            )));
        }
    }
    cfg
}

/// The headline acceptance test: n=4/f=1 Bracha with a Byzantine liar
/// completes over real TCP, and agreement + validity hold.
#[test]
fn bracha_decides_over_loopback_tcp_with_byzantine_node() {
    let (obs, shared) = Obs::new(MetricsSink::new());
    let mut rt = NetRuntime::new(4).timeout(TIMEOUT).observer(obs.clone());
    byzantine_cluster(&mut rt, 7);
    let report = rt.run();
    drop(obs);

    assert!(!report.timed_out, "cluster stalled over TCP");
    assert!(report.all_correct_decided());
    assert!(report.agreement_holds());
    // Validity: unanimous correct input One must be the decision, no
    // matter what the liar injects.
    assert_eq!(report.unanimous_output(), Some(Value::One));

    let metrics = shared.lock();
    assert!(metrics.peer_connects() > 0, "transport never reported a connection");
    assert_eq!(metrics.frame_decode_errors(), 0, "clean run must not hit decode errors");
}

/// The same cluster with the chaos layer dropping 10% of frame
/// transmission attempts (plus duplication): consensus still terminates
/// and the drops really happened.
#[test]
fn bracha_decides_with_ten_percent_frame_drop() {
    let (obs, shared) = Obs::new(MetricsSink::new());
    let chaos = ChaosConfig {
        seed: 0xC0FFEE,
        drop_per_mille: 100,
        dup_per_mille: 50,
        ..ChaosConfig::default()
    };
    let mut rt = NetRuntime::new(4).timeout(TIMEOUT).observer(obs.clone()).chaos(chaos);
    byzantine_cluster(&mut rt, 11);
    let report = rt.run();
    drop(obs);

    assert!(!report.timed_out, "cluster stalled under chaos");
    assert!(report.all_correct_decided());
    assert!(report.agreement_holds());
    assert_eq!(report.unanimous_output(), Some(Value::One));

    let metrics = shared.lock();
    assert!(
        metrics.chaos_frames_dropped() > 0,
        "10% drop rate over a full consensus run must drop at least one frame"
    );
}

/// Reconnect path: node 2's listener dies mid-run and rebinds on a fresh
/// port 250 ms later, while outage windows hold back all traffic towards
/// it until after the listener is gone. The dialers must back off,
/// reconnect, and replay their logs — and the cluster must still decide.
///
/// `skip_first_replay` additionally makes each writer's *first* reconnect
/// resume from its send counter instead of replaying its log, so the
/// frames queued while the link was down never cross the wire. The
/// receiver must notice the stream jumping ahead (`FrameSequenceGap`),
/// drop the connection, and recover via the second dial's full replay.
#[test]
fn cluster_survives_listener_bounce_and_reconnects() {
    let bounced = NodeId::new(2);
    let (obs, shared) = Obs::new(VecSink::new());
    // Hold back every link towards node 2 until its listener is already
    // down, so the first data frames hit a dead port and the writers go
    // through the full backoff/reconnect cycle.
    let outages = [0usize, 1, 3]
        .into_iter()
        .map(|from| LinkOutage { from: NodeId::new(from), to: bounced, start_ms: 0, end_ms: 120 })
        .collect();
    let chaos = ChaosConfig { seed: 3, outages, skip_first_replay: true, ..ChaosConfig::default() };
    let mut rt = NetRuntime::new(4)
        .timeout(TIMEOUT)
        .observer(obs.clone())
        .chaos(chaos)
        .bounce_listener(ListenerBounce { node: bounced, at_ms: 60, down_ms: 250 });
    byzantine_cluster(&mut rt, 13);
    let report = rt.run();
    drop(obs);

    assert!(!report.timed_out, "cluster never recovered from the listener bounce");
    assert!(report.all_correct_decided());
    assert!(report.agreement_holds());
    assert_eq!(report.unanimous_output(), Some(Value::One));

    let events = shared.lock().take();
    let reconnects = events
        .iter()
        .filter(|(_, _, ev)| matches!(ev, Event::PeerReconnected { peer, .. } if *peer == bounced))
        .count();
    let backoffs = events
        .iter()
        .filter(|(_, _, ev)| matches!(ev, Event::ReconnectBackoff { peer, .. } if *peer == bounced))
        .count();
    assert!(reconnects > 0, "no dialer ever reported PeerReconnected to the bounced node");
    assert!(backoffs > 0, "reconnection succeeded without any backoff retries?");

    // The skipped replay left the stream non-contiguous: at least one
    // receiver must have reported the gap (and survived it — the decide
    // assertions above already proved recovery).
    let gaps =
        events.iter().filter(|(_, _, ev)| matches!(ev, Event::FrameSequenceGap { .. })).count();
    assert!(gaps > 0, "skip_first_replay never produced a FrameSequenceGap event");
}

/// The erasure-coded broadcast at the headline bench geometry — n=16,
/// f=5, one 64 KiB payload — delivers the identical byte string over
/// real loopback TCP as under the deterministic simulator: the
/// "same delivered log on sim and loopback TCP" acceptance gate for the
/// coded-RBC tentpole. Fragments, Merkle proofs, and reconstruction all
/// cross the real framed wire here.
#[test]
fn coded_rbc_delivers_identical_log_on_sim_and_tcp() {
    use async_bft::sim::{UniformDelay, World, WorldConfig};

    let n = 16;
    let cfg = Config::max_resilience(n).expect("16 >= 3f + 1");
    assert_eq!(cfg.f(), 5);
    let sender = NodeId::new(0);
    let payload: Vec<u8> =
        (0..64 * 1024).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect();

    // --- deterministic simulator ---
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, 9));
    for id in cfg.nodes() {
        let mine = (id == sender).then(|| payload.clone());
        world.add_process(Box::new(CodedProcess::new(cfg, id, sender, mine)));
    }
    let sim_report = world.run();
    assert!(sim_report.all_correct_decided());
    let sim_log = sim_report.unanimous_output().expect("sim nodes must agree on one payload");

    // --- real loopback TCP ---
    let mut rt: NetRuntime<_, Vec<u8>> = NetRuntime::new(n).timeout(TIMEOUT);
    for id in cfg.nodes() {
        let mine = (id == sender).then(|| payload.clone());
        rt.add_process(Box::new(CodedProcess::new(cfg, id, sender, mine)));
    }
    let tcp_report = rt.run();
    assert!(!tcp_report.timed_out, "coded broadcast stalled over TCP");
    let tcp_log = tcp_report.unanimous_output().expect("tcp nodes must agree on one payload");

    assert_eq!(sim_log, tcp_log, "sim and TCP must deliver identical logs");
    assert_eq!(tcp_log, payload, "delivered log must be the broadcast payload");
}

/// A two-node ping-pong process: the message carries a counter, each
/// delivery replies with `counter + 1` until `limit`, and both nodes
/// surface an output near the end so the runtime can tear down. Each
/// directed link carries `limit / 2` frames — a knob for how much
/// traffic crosses one link.
struct PingPong {
    id: NodeId,
    limit: u64,
    seen: Option<u64>,
    halted: bool,
}

impl PingPong {
    fn new(id: NodeId, limit: u64) -> Self {
        PingPong { id, limit, seen: None, halted: false }
    }
}

impl async_bft::types::Process for PingPong {
    type Msg = Vec<u8>;
    type Output = u64;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<async_bft::types::Effect<Vec<u8>, u64>> {
        use async_bft::types::Effect;
        if self.id == NodeId::new(0) {
            vec![Effect::Send { to: NodeId::new(1), msg: 1u64.to_le_bytes().to_vec() }]
        } else {
            Vec::new()
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: &Vec<u8>,
    ) -> Vec<async_bft::types::Effect<Vec<u8>, u64>> {
        use async_bft::types::Effect;
        let c = u64::from_le_bytes(msg[..8].try_into().unwrap());
        self.seen = Some(c);
        if c >= self.limit {
            self.halted = true;
            return vec![Effect::Output(c), Effect::Halt];
        }
        let mut effects = vec![Effect::Send { to: from, msg: (c + 1).to_le_bytes().to_vec() }];
        if c >= self.limit - 1 {
            effects.push(Effect::Output(c));
        }
        effects
    }

    fn output(&self) -> Option<u64> {
        self.seen.filter(|c| *c >= self.limit - 1)
    }

    fn is_halted(&self) -> bool {
        self.halted
    }
}

/// Runs a two-node ping-pong of `round_trips` frames per directed link
/// and returns the largest `LinkLogPeak` any writer reported.
fn peak_link_log(round_trips: u64) -> u64 {
    let (obs, shared) = Obs::new(VecSink::new());
    let mut rt: NetRuntime<Vec<u8>, u64> =
        NetRuntime::new(2).timeout(TIMEOUT).observer(obs.clone());
    for i in 0..2 {
        rt.add_process(Box::new(PingPong::new(NodeId::new(i), round_trips * 2)));
    }
    let report = rt.run();
    drop(obs);
    assert!(!report.timed_out, "ping-pong of {round_trips} round trips stalled");
    let events = shared.lock().take();
    events
        .iter()
        .filter_map(|(_, _, ev)| match ev {
            Event::LinkLogPeak { frames, .. } => Some(*frames),
            _ => None,
        })
        .max()
        .expect("writer threads must report LinkLogPeak at teardown")
}

/// Ack-based log trimming keeps each writer's replay log bounded by the
/// ack cadence, not the run length: doubling the traffic horizon must
/// not move the resident peak, where the untrimmed log's peak would
/// equal the per-link frame count (96 vs 192 here).
#[test]
fn writer_log_peak_is_bounded_by_ack_horizon() {
    let short = peak_link_log(96);
    let long = peak_link_log(192);
    assert!(short >= 1, "a ping-pong run must log at least one frame");
    // Absolute bound: a handful of ack windows, far under the 96-frame
    // untrimmed short-run peak.
    assert!(short <= 64, "short-run peak {short} suggests the log never trimmed");
    assert!(long <= 64, "long-run peak {long} suggests the log never trimmed");
    // Horizon doubling: the peak tracks the ack window, not the total
    // frame count (which doubled).
    assert!(
        long <= short + 32,
        "doubling the horizon moved the peak from {short} to {long}: log growth tracks run length"
    );
}

/// The state-machine differential gate: the same seeded KV workload,
/// ordered and applied on the deterministic simulator and on real
/// loopback TCP, ends with byte-identical state hashes on all correct
/// nodes — apply is a function of the committed log, not of the
/// substrate's scheduling.
#[test]
fn smr_state_hash_matches_between_sim_and_tcp() {
    use async_bft::coin::CommonCoin;
    use async_bft::order::OrderOptions;
    use async_bft::rbc::RbcKind;
    use async_bft::sim::{UniformDelay, World, WorldConfig};
    use async_bft::smr::{seeded_workload, SmrMessage, SmrOptions, SmrOutput, SmrProcess};

    let n = 4;
    let seed = 21u64;
    let cfg = Config::new(n, 1).expect("4 >= 3f + 1");
    let opts = SmrOptions {
        order: OrderOptions { batch_max: 2, pipeline_depth: 2, epochs: 5, rbc: RbcKind::Bracha },
        checkpoint_interval: 2,
    };
    let count = (opts.order.epochs * opts.order.batch_max as u64) as usize;
    let make = move |id: NodeId| {
        SmrProcess::new(cfg, id, opts, seeded_workload(seed, id, count), move |inst| {
            CommonCoin::new(seed, inst)
        })
    };

    // --- deterministic simulator ---
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
    for id in cfg.nodes() {
        world.add_process(Box::new(make(id)));
    }
    let sim_report = world.run();
    assert!(sim_report.all_correct_decided());
    let sim_out = sim_report.unanimous_output().expect("sim nodes must agree on one state");

    // --- real loopback TCP ---
    let mut rt: NetRuntime<SmrMessage, SmrOutput> = NetRuntime::new(n).timeout(TIMEOUT);
    for id in cfg.nodes() {
        rt.add_process(Box::new(make(id)));
    }
    let tcp_report = rt.run();
    assert!(!tcp_report.timed_out, "state machine stalled over TCP");
    assert!(tcp_report.agreement_holds());
    let tcp_out = tcp_report.unanimous_output().expect("tcp nodes must agree on one state");

    assert_eq!(sim_out.state_hash, tcp_out.state_hash, "sim and TCP state hashes diverged");
    assert_eq!(sim_out, tcp_out, "sim and TCP state summaries diverged");
}

/// The crash-restart acceptance gate: in a seeded n=4/f=1 TCP run the
/// highest-indexed node is killed early and restarted after the
/// survivors have certified checkpoints. It must rejoin via
/// erasure-coded peer state transfer from a certified checkpoint,
/// provably without replaying any epoch below it, and every correct
/// node — victim included — must finish with the identical state hash.
#[test]
fn crashed_node_rejoins_via_state_transfer_over_tcp() {
    use async_bft::coin::CommonCoin;
    use async_bft::net::RestartFactory;
    use async_bft::order::OrderOptions;
    use async_bft::rbc::RbcKind;
    use async_bft::smr::{seeded_workload, SmrMessage, SmrOptions, SmrOutput, SmrProcess};

    let n = 4;
    let seed = 33u64;
    let interval = 2u64;
    let epochs = 6u64;
    let cfg = Config::new(n, 1).expect("4 >= 3f + 1");
    let opts = SmrOptions {
        order: OrderOptions { batch_max: 2, pipeline_depth: 2, epochs, rbc: RbcKind::Bracha },
        checkpoint_interval: interval,
    };
    let count = (epochs * opts.order.batch_max as u64) as usize;
    let victim = NodeId::new(n - 1);

    let (obs, shared) = Obs::new(VecSink::new());
    let make = move |id: NodeId, obs: Obs| {
        SmrProcess::new(cfg, id, opts, seeded_workload(seed, id, count), move |inst| {
            CommonCoin::new(seed, inst)
        })
        .with_obs(obs)
    };
    // Crash long before the victim can finish; restart once the
    // survivors have had time to certify (and truncate below) at least
    // the first checkpoint boundary, so live replay is impossible.
    let obs_replacement = obs.clone();
    let factory: RestartFactory<SmrMessage, SmrOutput> =
        Box::new(move || Box::new(make(victim, obs_replacement).recovering(true)));
    let mut rt: NetRuntime<SmrMessage, SmrOutput> = NetRuntime::new(n)
        .timeout(TIMEOUT)
        .observer(obs.clone())
        .restart_node(victim, 100, 3_000, factory);
    for id in cfg.nodes() {
        rt.add_process(Box::new(make(id, obs.clone())));
    }
    let report = rt.run();
    drop(obs);

    assert!(!report.timed_out, "victim never rejoined: the cluster timed out");
    assert!(report.all_correct_decided());
    assert!(report.agreement_holds());
    let out = report.unanimous_output().expect("all nodes, victim included, agree on the state");
    assert_eq!(out.epochs, epochs);

    let events = shared.lock().take();
    // The victim completed at least one state transfer, for a boundary
    // its peers really certified.
    let fetched: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|(at, node, ev)| match ev {
            Event::StateTransferCompleted { epoch, .. } if *node == victim => Some((*at, *epoch)),
            _ => None,
        })
        .collect();
    let &(_, first_fetched) = fetched.first().expect("victim never completed a state transfer");
    assert!(first_fetched >= interval, "fetched checkpoint {first_fetched} below the interval");
    assert!(
        events.iter().any(|(_, node, ev)| matches!(
            ev,
            Event::CheckpointCertified { epoch, .. } if *node != victim && *epoch == first_fetched
        )),
        "no surviving peer certified the checkpoint the victim installed"
    );

    // No replay below the checkpoint: once the victim began fetching,
    // every slot it applied sits at or above the fetched boundary.
    let fetch_started_at = events
        .iter()
        .find_map(|(at, node, ev)| match ev {
            Event::StateTransferStarted { .. } if *node == victim => Some(*at),
            _ => None,
        })
        .expect("victim never started a state transfer");
    let replayed = events
        .iter()
        .filter(|(at, node, ev)| match ev {
            Event::SlotApplied { epoch, .. } => {
                *node == victim && *at >= fetch_started_at && *epoch < first_fetched
            }
            _ => false,
        })
        .count();
    assert_eq!(replayed, 0, "victim replayed {replayed} slots below its fetched checkpoint");

    // And the online invariant checkers stayed silent.
    assert!(
        !events.iter().any(|(_, _, ev)| matches!(ev, Event::InvariantViolated { .. })),
        "invariant violation during crash-restart recovery"
    );
}

/// Reliable broadcast with a variable-length string payload crosses the
/// wire intact (exercises the length-prefixed string codec end to end).
#[test]
fn rbc_delivers_string_payload_over_tcp() {
    let n = 4;
    let cfg = Config::new(n, 1).expect("4 >= 3f + 1");
    let sender = NodeId::new(0);
    let payload = "loopback payload — κοινή διάλεκτος".to_string();
    let mut rt: NetRuntime<_, String> = NetRuntime::new(n).timeout(TIMEOUT);
    for id in cfg.nodes() {
        let mine = (id == sender).then(|| payload.clone());
        rt.add_process(Box::new(RbcProcess::new(cfg, id, sender, mine)));
    }
    let report = rt.run();
    assert!(!report.timed_out);
    assert_eq!(report.unanimous_output(), Some(payload));
}
