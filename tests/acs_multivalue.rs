//! End-to-end tests for the ACS / multi-value extension layer across
//! crates (rbc + core + coin + sim + adversary).

use async_bft::adversary::Silent;
use async_bft::coin::CommonCoin;
use async_bft::consensus::acs::{AcsMessage, AcsOutput, AcsProcess};
use async_bft::consensus::multivalue::MultiValueProcess;
use async_bft::sim::{UniformDelay, World, WorldConfig};
use async_bft::types::{Config, NodeId};

fn coins(n: usize, seed: u64) -> Vec<CommonCoin> {
    (0..n).map(|i| CommonCoin::new(seed, i as u64)).collect()
}

#[test]
fn acs_core_set_is_identical_across_nodes_and_seeds() {
    for seed in 0..8 {
        let n = 7;
        let cfg = Config::new(n, 2).unwrap();
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 12, seed));
        for id in cfg.nodes() {
            let proposal = format!("batch-{}-{}", id.index(), seed).into_bytes();
            world.add_process(Box::new(AcsProcess::new(cfg, id, proposal, coins(n, seed))));
        }
        let report = world.run();
        assert!(report.all_correct_decided(), "seed {seed}");
        assert!(report.agreement_holds(), "seed {seed}");
        let set = report.output_of(NodeId::new(0)).unwrap();
        assert!(set.len() >= cfg.quorum(), "seed {seed}: set too small");
        // Every entry is authentic: proposer i's payload is what i sent.
        for (proposer, payload) in set {
            assert_eq!(
                payload,
                format!("batch-{}-{}", proposer.index(), seed).into_bytes(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn acs_with_two_silent_proposers_still_closes() {
    let n = 7;
    let cfg = Config::new(n, 2).unwrap();
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 12, 4));
    for id in cfg.nodes() {
        if id.index() >= 5 {
            world.add_faulty_process(Box::new(Silent::<AcsMessage, AcsOutput>::new(id)));
        } else {
            let proposal = vec![id.index() as u8; 32];
            world.add_process(Box::new(AcsProcess::new(cfg, id, proposal, coins(n, 4))));
        }
    }
    let report = world.run();
    assert!(report.all_correct_decided());
    assert!(report.agreement_holds());
    let set = report.output_of(NodeId::new(0)).unwrap();
    assert!(set.len() >= 5, "five live proposals must make it");
    assert!(set.iter().all(|(id, _)| id.index() < 5), "dead proposals cannot");
}

#[test]
fn multivalue_consensus_decides_one_proposed_string() {
    for seed in 0..8 {
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 10, seed));
        for id in cfg.nodes() {
            world.add_process(Box::new(MultiValueProcess::new(
                cfg,
                id,
                format!("candidate-{}", id.index()).into_bytes(),
                coins(n, seed),
            )));
        }
        let report = world.run();
        assert!(report.all_correct_decided(), "seed {seed}");
        assert!(report.agreement_holds(), "seed {seed}");
        let v = report.output_of(NodeId::new(0)).unwrap();
        assert!(
            (0..n).any(|i| v == format!("candidate-{i}").into_bytes()),
            "seed {seed}: decided value was never proposed"
        );
    }
}

#[test]
fn multivalue_with_crashed_node_still_decides() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 10, 2));
    for id in cfg.nodes() {
        if id.index() == 0 {
            world.add_faulty_process(Box::new(Silent::<AcsMessage, Vec<u8>>::new(id)));
        } else {
            world.add_process(Box::new(MultiValueProcess::new(
                cfg,
                id,
                format!("candidate-{}", id.index()).into_bytes(),
                coins(n, 2),
            )));
        }
    }
    let report = world.run();
    assert!(report.all_correct_decided());
    assert!(report.agreement_holds());
    // Node 0 never proposed, so the decision must come from 1..4.
    let v = report.output_of(NodeId::new(1)).unwrap();
    assert!((1..n).any(|i| v == format!("candidate-{i}").into_bytes()));
}
