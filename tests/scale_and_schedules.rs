//! Scale smoke tests and schedule-coverage tests: larger clusters, the
//! heavy-tailed geometric schedule, and metric sanity across sizes.

use async_bft::types::Value;
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};

/// A 25-node cluster (f = 8) with maximal mute faults still reaches
/// agreement — the largest configuration in the test suite.
#[test]
fn twenty_five_node_cluster_decides() {
    let report = Cluster::new(25)
        .unwrap()
        .seed(1)
        .split_inputs(13)
        .coin(CoinChoice::Common)
        .faults(8, FaultKind::Mute)
        .run();
    assert!(report.all_correct_decided());
    assert!(report.agreement_holds());
}

/// Heavy-tailed (geometric) delays: most messages fast, some straggling
/// hundreds of ticks — consensus still terminates and agrees.
#[test]
fn geometric_schedule_is_survivable() {
    for seed in 0..5 {
        let report = Cluster::new(7)
            .unwrap()
            .seed(seed)
            .split_inputs(3)
            .schedule(Schedule::Geometric { p_per_mille: 150, max: 400 })
            .run();
        assert!(report.all_correct_decided(), "seed {seed}");
        assert!(report.agreement_holds(), "seed {seed}");
    }
}

/// Message counts grow monotonically with n (a coarse metric-sanity
/// check that the accounting is wired correctly across sizes).
#[test]
fn message_counts_grow_with_n() {
    let mut last = 0;
    for n in [4usize, 7, 10, 13] {
        let report = Cluster::new(n).unwrap().seed(2).run();
        assert!(report.all_correct_decided(), "n={n}");
        assert!(report.metrics.sent > last, "n={n}: {} should exceed {last}", report.metrics.sent);
        last = report.metrics.sent;
    }
}

/// Byte accounting is consistent: total bytes = Σ per-kind bytes, and
/// per-kind message counts sum to the total sent.
#[test]
fn metric_accounting_is_consistent() {
    let report = Cluster::new(7).unwrap().seed(3).split_inputs(3).run();
    let kind_msgs: u64 = report.metrics.by_kind.values().map(|&(c, _)| c).sum();
    let kind_bytes: u64 = report.metrics.by_kind.values().map(|&(_, b)| b).sum();
    assert_eq!(kind_msgs, report.metrics.sent);
    assert_eq!(kind_bytes, report.metrics.bytes_sent);
}

/// Decisions are insensitive to the unanimous value under relabeling:
/// flipping every input flips the decision (a symmetry check of the
/// whole stack — protocol, validation and coin plumbing carry no
/// value-dependent bias on the forced path).
#[test]
fn unanimous_value_symmetry() {
    for seed in 0..5 {
        let a = Cluster::new(7).unwrap().seed(seed).inputs(vec![Value::One; 7]).run();
        let b = Cluster::new(7).unwrap().seed(seed).inputs(vec![Value::Zero; 7]).run();
        assert_eq!(a.unanimous_output(), Some(Value::One), "seed {seed}");
        assert_eq!(b.unanimous_output(), Some(Value::Zero), "seed {seed}");
        assert_eq!(
            a.decision_round(),
            b.decision_round(),
            "seed {seed}: symmetric runs should take the same rounds"
        );
    }
}
