//! Observer event-stream tests.
//!
//! Three layers of assurance:
//!
//! 1. A **scripted run** — 4 nodes, unanimous inputs, `Fixed(1)` delays —
//!    is fully deterministic, so we assert the *exact ordered* event
//!    sequence node 0 emits, timestamps included.
//! 2. A **property test** — the [`InvariantSink`] accepts every honest
//!    run across random seeds and input splits.
//! 3. A **hand-crafted Byzantine stream** — equivocating
//!    `MessageValidated` events — is rejected.

use async_bft::obs::{Event, InvariantSink, Obs, RbcPhase, Sink, VecSink};
use async_bft::types::{NodeId, Step, Value};
use async_bft::{Cluster, Schedule};
use proptest::prelude::*;

fn node(i: usize) -> NodeId {
    NodeId::new(i)
}

/// Runs the scripted cluster and returns node 0's event stream.
fn scripted_node0_events() -> Vec<(u64, Event)> {
    let (obs, shared) = Obs::new(VecSink::new());
    let report = Cluster::new(4).unwrap().schedule(Schedule::Fixed(1)).observer(obs.clone()).run();
    drop(obs);
    assert!(report.all_correct_decided());
    assert_eq!(report.unanimous_output(), Some(Value::One));
    let events = shared.lock().take();
    events.into_iter().filter(|&(_, n, _)| n == node(0)).map(|(at, _, ev)| (at, ev)).collect()
}

#[test]
fn scripted_run_emits_exact_consensus_sequence() {
    let consensus: Vec<(u64, Event)> = scripted_node0_events()
        .into_iter()
        .filter(|(_, ev)| {
            matches!(
                ev,
                Event::RoundStarted { .. }
                    | Event::RoundCompleted { .. }
                    | Event::StepEntered { .. }
                    | Event::QuorumReached { .. }
                    | Event::MessageValidated { .. }
                    | Event::ValueLocked { .. }
                    | Event::Decided { .. }
            )
        })
        .collect();

    let mv = |origin: usize, step: Step, flagged: bool| Event::MessageValidated {
        origin: node(origin),
        round: 1,
        step,
        value: Value::One,
        flagged,
    };
    // With Fixed(1) delays every hop takes one tick: inputs are RBC-cast
    // at t=0, echo quorums fill at t=2, payloads reliably deliver (and
    // validate) at t=3, and each consensus step costs exactly 3 ticks.
    // Node 0's n − f = 3 quorum fills on {n0, n1, n2}; n3's payload
    // validates after the step has already advanced.
    let expected = vec![
        (0, Event::RoundStarted { round: 1 }),
        (0, Event::StepEntered { round: 1, step: Step::Initial }),
        (3, mv(0, Step::Initial, false)),
        (3, mv(1, Step::Initial, false)),
        (3, mv(2, Step::Initial, false)),
        (3, Event::QuorumReached { round: 1, step: Step::Initial, support: 3 }),
        (3, Event::StepEntered { round: 1, step: Step::Echo }),
        (3, mv(3, Step::Initial, false)),
        (6, mv(0, Step::Echo, false)),
        (6, mv(1, Step::Echo, false)),
        (6, mv(2, Step::Echo, false)),
        (6, Event::QuorumReached { round: 1, step: Step::Echo, support: 3 }),
        (6, Event::ValueLocked { round: 1, value: Value::One, support: 3 }),
        (6, Event::StepEntered { round: 1, step: Step::Ready }),
        (6, mv(3, Step::Echo, false)),
        (9, mv(0, Step::Ready, true)),
        (9, mv(1, Step::Ready, true)),
        (9, mv(2, Step::Ready, true)),
        (9, Event::QuorumReached { round: 1, step: Step::Ready, support: 3 }),
        (9, Event::Decided { round: 1, value: Value::One }),
        (9, Event::RoundCompleted { round: 1 }),
        (9, Event::RoundStarted { round: 2 }),
        (9, Event::StepEntered { round: 2, step: Step::Initial }),
    ];
    assert_eq!(consensus, expected);
}

#[test]
fn scripted_run_emits_exact_rbc_sequence_for_own_broadcast() {
    // Node 0's view of its own round-1 Initial-step RBC instance.
    let tag = "StepTag { round: r1, step: Initial }";
    let own: Vec<(u64, Event)> = scripted_node0_events()
        .into_iter()
        .filter(|(_, ev)| match ev {
            Event::RbcPhaseEntered { origin, tag: t, .. }
            | Event::RbcQuorumReached { origin, tag: t, .. }
            | Event::RbcDelivered { origin, tag: t, .. } => *origin == node(0) && t == tag,
            _ => false,
        })
        .collect();
    let expected = vec![
        (
            1,
            Event::RbcPhaseEntered { origin: node(0), tag: tag.to_string(), phase: RbcPhase::Send },
        ),
        (
            1,
            Event::RbcPhaseEntered { origin: node(0), tag: tag.to_string(), phase: RbcPhase::Echo },
        ),
        (
            2,
            Event::RbcQuorumReached {
                origin: node(0),
                tag: tag.to_string(),
                phase: RbcPhase::Echo,
                support: 3,
            },
        ),
        (
            2,
            Event::RbcPhaseEntered {
                origin: node(0),
                tag: tag.to_string(),
                phase: RbcPhase::Ready,
            },
        ),
        (3, Event::RbcDelivered { origin: node(0), tag: tag.to_string(), support: 3 }),
    ];
    assert_eq!(own, expected);
}

#[test]
fn scripted_run_transport_counts_match_metrics() {
    let (obs, shared) = Obs::new(VecSink::new());
    let report = Cluster::new(4).unwrap().schedule(Schedule::Fixed(1)).observer(obs.clone()).run();
    drop(obs);
    let sink = shared.try_into_inner().expect("all observer handles dropped");
    let events = sink.events();
    let sent =
        events.iter().filter(|(_, _, e)| matches!(e, Event::MessageSent { .. })).count() as u64;
    let delivered =
        events.iter().filter(|(_, _, e)| matches!(e, Event::MessageDelivered { .. })).count()
            as u64;
    assert_eq!(sent, report.metrics.sent);
    assert_eq!(delivered, report.metrics.delivered);
    // Classified kinds flow through to the event stream.
    assert!(events
        .iter()
        .any(|(_, _, e)| matches!(e, Event::MessageSent { kind: "send/initial", bytes: 16, .. })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest clusters — any seed, any input split, both quorum-feasible
    /// sizes — never trip the invariant checker.
    #[test]
    fn honest_runs_satisfy_invariants(
        seed in 0u64..1000,
        big in 0usize..2,
        ones in 0usize..8,
    ) {
        let n = if big == 1 { 7 } else { 4 };
        let ones = ones.min(n);
        let expected = if ones == n {
            Some(Value::One)
        } else if ones == 0 {
            Some(Value::Zero)
        } else {
            None
        };
        let sink = match expected {
            Some(v) => InvariantSink::expecting(v),
            None => InvariantSink::new(),
        };
        let (obs, shared) = Obs::new(sink);
        let report = Cluster::new(n)
            .unwrap()
            .seed(seed)
            .split_inputs(ones)
            .observer(obs.clone())
            .run();
        drop(obs);
        prop_assert!(report.all_correct_decided());
        let mut sink = shared.try_into_inner().expect("sole owner");
        let violations = sink.finish(&report.correct).to_vec();
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        prop_assert_eq!(sink.decided().len(), n);
    }
}

#[test]
fn equivocating_stream_is_rejected() {
    // Two observers validate contradictory payloads for the same
    // (origin, round, step) — exactly what Bracha's RBC layer makes
    // impossible for honest executions.
    let mut sink = InvariantSink::new();
    sink.on_event(
        5,
        node(1),
        &Event::MessageValidated {
            origin: node(0),
            round: 1,
            step: Step::Initial,
            value: Value::One,
            flagged: false,
        },
    );
    assert!(sink.is_ok());
    sink.on_event(
        6,
        node(2),
        &Event::MessageValidated {
            origin: node(0),
            round: 1,
            step: Step::Initial,
            value: Value::Zero,
            flagged: false,
        },
    );
    assert!(!sink.is_ok());
    assert!(
        sink.violations().iter().any(|v| v.contains("equivocation")),
        "violations: {:?}",
        sink.violations()
    );
}

#[test]
fn disagreeing_decisions_are_rejected() {
    let mut sink = InvariantSink::new();
    sink.on_event(9, node(0), &Event::Decided { round: 1, value: Value::One });
    sink.on_event(9, node(1), &Event::Decided { round: 2, value: Value::Zero });
    assert!(!sink.is_ok());
    let mut sink = InvariantSink::expecting(Value::Zero);
    sink.on_event(9, node(0), &Event::Decided { round: 1, value: Value::One });
    assert!(!sink.is_ok());
}

/// Cross-substrate tracing parity: the same seeded ordering scenario on
/// the deterministic simulator and on the loopback-TCP `NetRuntime`
/// must produce the same set of trace trees once wall-clock timing is
/// ignored.
///
/// Timing-*dependent* phases are excluded from the comparison: ABA
/// round counts (and thus `aba_round`/`coin_wait` spans) follow the
/// schedule, and a node may skip its `rbc_echo` span entirely when
/// ready-amplification outruns its echo. What is left — `submit`,
/// `batch_wait`, `rbc_ready`, `commit` — is delivery-guaranteed on
/// every correct node, so the per-trace span sets must match exactly.
#[test]
fn sim_and_net_substrates_trace_the_same_delivery_guaranteed_spans() {
    use async_bft::coin::CommonCoin;
    use async_bft::net::NetRuntime;
    use async_bft::obs::{TraceAssembler, TraceSink};
    use async_bft::order::{OrderLog, OrderMessage, OrderOptions, OrderProcess};
    use async_bft::sim::{UniformDelay, World, WorldConfig};
    use async_bft::types::Config;
    use std::collections::BTreeMap;
    use std::time::Duration;

    const N: usize = 4;
    const SEED: u64 = 11;
    let cfg = Config::new(N, 1).unwrap();
    let opts =
        OrderOptions { batch_max: 2, pipeline_depth: 2, epochs: 2, ..OrderOptions::default() };
    let workload = |id: NodeId| -> Vec<Vec<u8>> {
        (0..opts.epochs * opts.batch_max as u64)
            .map(|i| format!("tx-{}-{i}", id.index()).into_bytes())
            .collect()
    };

    // Substrate 1: deterministic simulator.
    let (obs, shared) = Obs::new(TraceSink::new());
    let mut world = World::new(WorldConfig::new(N), UniformDelay::new(1, 5, SEED));
    world.set_observer(obs.clone());
    for id in cfg.nodes() {
        world.add_process(Box::new(
            OrderProcess::new(cfg, id, opts, workload(id), move |inst| CommonCoin::new(SEED, inst))
                .with_obs(obs.clone()),
        ));
    }
    let sim_report = world.run();
    assert!(sim_report.all_correct_decided());
    let sim_txs = sim_report.unanimous_output().map_or(0, |log| log.len());
    drop(obs);
    let sim = shared.try_into_inner().expect("sim sink").into_assembler();

    // Substrate 2: real threads over loopback TCP.
    let (obs, shared) = Obs::new(TraceSink::new());
    let mut rt: NetRuntime<OrderMessage, OrderLog> =
        NetRuntime::new(N).timeout(Duration::from_secs(120)).observer(obs.clone());
    for id in cfg.nodes() {
        rt.add_process(Box::new(
            OrderProcess::new(cfg, id, opts, workload(id), move |inst| CommonCoin::new(SEED, inst))
                .with_obs(obs.clone()),
        ));
    }
    let net_report = rt.run();
    assert!(net_report.all_correct_decided(), "loopback run must complete");
    let net_txs = net_report.unanimous_output().map_or(0, |log| log.len());
    drop(obs);
    let net = shared.try_into_inner().expect("net sink").into_assembler();

    // Both substrates ordered every submitted payload...
    assert_eq!(sim_txs, opts.epochs as usize * opts.batch_max * N);
    assert_eq!(sim_txs, net_txs);
    // ...and assembled the same traces with zero anomalies.
    assert_eq!(sim.trace_ids(), net.trace_ids());
    for asm in [&sim, &net] {
        assert_eq!(asm.open_spans(), 0);
        assert_eq!(asm.duplicate_starts() + asm.unmatched_ends(), 0);
    }

    let guaranteed = |asm: &TraceAssembler| -> BTreeMap<u64, Vec<(usize, String)>> {
        const KEEP: [&str; 4] = ["submit", "batch_wait", "rbc_ready", "commit"];
        asm.phase_sets()
            .into_iter()
            .map(|(trace, set)| {
                let kept =
                    set.into_iter().filter(|(_, phase)| KEEP.contains(&phase.as_str())).collect();
                (trace, kept)
            })
            .collect()
    };
    assert_eq!(guaranteed(&sim), guaranteed(&net));
}
