//! Trace-conservation properties of the causal tracing layer.
//!
//! Three guarantees, checked over random seeds on the deterministic
//! simulator:
//!
//! 1. **Conservation** — every `SpanStart` is matched by exactly one
//!    `SpanEnd`: no duplicates, no orphans, no spans left open once the
//!    run reaches quiescence.
//! 2. **Completeness** — every committed transaction has a full
//!    submit → commit critical path whose per-phase attribution sums
//!    exactly to the measured end-to-end latency at the proposer.
//! 3. **Determinism** — two runs with the same seed produce
//!    byte-identical canonical trace trees, timestamps included.

use async_bft::coin::CommonCoin;
use async_bft::obs::{Obs, TraceAssembler, TraceSink};
use async_bft::order::{OrderOptions, OrderProcess};
use async_bft::sim::{UniformDelay, World, WorldConfig};
use async_bft::types::Config;
use proptest::prelude::*;

const N: usize = 4;
const F: usize = 1;

/// Runs one traced ordering scenario on the simulator and returns the
/// assembled trace trees plus the unanimously ordered payload count.
fn traced_sim_run(seed: u64, epochs: u64, batch: usize, depth: usize) -> (TraceAssembler, usize) {
    let cfg = Config::new(N, F).unwrap();
    let opts =
        OrderOptions { batch_max: batch, pipeline_depth: depth, epochs, ..OrderOptions::default() };
    let (obs, shared) = Obs::new(TraceSink::new());
    let mut world = World::new(WorldConfig::new(N), UniformDelay::new(1, 7, seed));
    world.set_observer(obs.clone());
    for id in cfg.nodes() {
        let workload: Vec<Vec<u8>> = (0..epochs * batch as u64)
            .map(|i| format!("tx-{}-{i}", id.index()).into_bytes())
            .collect();
        world.add_process(Box::new(
            OrderProcess::new(cfg, id, opts, workload, move |inst| CommonCoin::new(seed, inst))
                .with_obs(obs.clone()),
        ));
    }
    let report = world.run();
    assert!(report.all_correct_decided(), "seed {seed}: ordering run must complete");
    let txs = report.unanimous_output().map_or(0, |log| log.len());
    drop(obs);
    (shared.try_into_inner().expect("sole owner").into_assembler(), txs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation and completeness across random seeds and shapes.
    #[test]
    fn spans_are_conserved_and_critical_paths_complete(
        seed in 0u64..500,
        epochs in 1u64..4,
        batch in 1usize..4,
        depth in 1usize..3,
    ) {
        let (asm, _) = traced_sim_run(seed, epochs, batch, depth);
        prop_assert_eq!(asm.duplicate_starts(), 0, "re-opened span ids");
        prop_assert_eq!(asm.unmatched_ends(), 0, "ends without a start");
        prop_assert_eq!(asm.open_spans(), 0, "spans left open at quiescence");
        // One trace per (proposer, epoch), each with a complete
        // submit → commit critical path summing to the root duration.
        prop_assert_eq!(asm.trace_count() as u64, epochs * N as u64);
        for trace in asm.trace_ids() {
            let root = asm.root(trace).expect("submit root observed");
            let end = root.end.expect("root closed");
            let path = asm.critical_path(trace).expect("critical path complete");
            let total: u64 = path.iter().map(|&(_, ticks)| ticks).sum();
            prop_assert_eq!(
                total,
                end - root.start,
                "attribution must sum to the submit latency (trace {:016x}: {:?})",
                trace,
                path
            );
        }
    }

    /// Same seed, same trees — byte-identical canonical renderings.
    #[test]
    fn same_seed_runs_produce_identical_trees(seed in 0u64..500) {
        let (a, txs_a) = traced_sim_run(seed, 2, 2, 2);
        let (b, txs_b) = traced_sim_run(seed, 2, 2, 2);
        prop_assert_eq!(txs_a, txs_b);
        prop_assert_eq!(a.canonical_lines(), b.canonical_lines());
    }
}

/// Different seeds must still share the *identity* space: trace ids are
/// derived from (proposer, epoch, batch_seq), never from the seed, so
/// cross-run correlation by trace id is meaningful.
#[test]
fn trace_ids_are_seed_independent() {
    let (a, _) = traced_sim_run(1, 2, 2, 2);
    let (b, _) = traced_sim_run(99, 2, 2, 2);
    assert_eq!(a.trace_ids(), b.trace_ids());
    // But the timings differ, so the canonical trees do not collide.
    assert_ne!(a.canonical_lines(), b.canonical_lines());
}
