//! Regression and differential gates for the reactor transport driver
//! and the client gateway.
//!
//! The reactor replaced the thread-per-link transport; the proof that it
//! preserved the wire semantics is differential: the same seeded
//! workload under the same chaos schedule must end in byte-identical
//! delivered logs under [`NetDriver::Threads`] and
//! [`NetDriver::Reactor`]. Alongside, the three bugfix regressions from
//! the same change ride here: bind failures surface as typed
//! [`SetupError`]s instead of panics, shutdown is never stalled by
//! in-flight chaos/backoff sleeps, and a panicked runtime thread is
//! reported via `RuntimeReport::poisoned` instead of being masked by
//! poison-riding mutex locks.
//!
//! These tests open real sockets and real threads; CI runs them
//! single-threaded (`--test-threads=1`) under a hard timeout.

use async_bft::coin::{CommonCoin, LocalCoin};
use async_bft::consensus::{BrachaOptions, BrachaProcess, Wire};
use async_bft::net::{ChaosConfig, NetDriver, NetRuntime, SetupError};
use async_bft::obs::{Event, Obs, Sink};
use async_bft::order::gateway::{GatewayCore, OfferOutcome};
use async_bft::order::{Backpressure, OrderLog, OrderMessage, OrderOptions, OrderProcess};
use async_bft::rbc::CodedProcess;
use async_bft::types::{Config, Effect, NodeId, Process, Value};
use proptest::prelude::*;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(60);

// ---------------------------------------------------------------------
// Differential gates: Threads vs Reactor
// ---------------------------------------------------------------------

/// Runs a seeded n=4 ordering cluster over loopback TCP under `driver`
/// and returns the unanimous committed log.
fn ordered_log_under(driver: NetDriver, seed: u64, chaos: ChaosConfig) -> OrderLog {
    let n = 4;
    let cfg = Config::new(n, 1).expect("4 >= 3f + 1");
    let opts =
        OrderOptions { batch_max: 2, pipeline_depth: 2, epochs: 3, ..OrderOptions::default() };
    let per_node = opts.epochs as usize * opts.batch_max;
    let mut rt: NetRuntime<OrderMessage, OrderLog> =
        NetRuntime::new(n).timeout(TIMEOUT).driver(driver).chaos(chaos);
    for id in cfg.nodes() {
        // A deterministic per-node workload: the log contents depend
        // only on (seed, node), never on the substrate's scheduling.
        let workload: Vec<Vec<u8>> =
            (0..per_node).map(|i| format!("tx-{seed}-{}-{i}", id.index()).into_bytes()).collect();
        rt.add_process(Box::new(OrderProcess::new(cfg, id, opts, workload, move |inst| {
            CommonCoin::new(seed, inst)
        })));
    }
    let report = rt.run();
    assert!(!report.timed_out, "{driver:?} ordering run stalled");
    assert!(report.agreement_holds(), "{driver:?} nodes diverged");
    assert!(!report.poisoned, "{driver:?} run recorded a thread panic");
    report.unanimous_output().unwrap_or_else(|| panic!("{driver:?} nodes never agreed on a log"))
}

/// The ordering differential at n=4: same seed, same chaos schedule,
/// byte-identical committed logs under the thread-per-link driver and
/// the reactor.
#[test]
fn reactor_matches_threads_on_ordered_log_under_chaos() {
    let chaos = ChaosConfig {
        seed: 0xD1FF,
        drop_per_mille: 50,
        dup_per_mille: 25,
        ..ChaosConfig::default()
    };
    let threads = ordered_log_under(NetDriver::Threads, 17, chaos.clone());
    let reactor = ordered_log_under(NetDriver::Reactor, 17, chaos);
    assert!(!threads.is_empty(), "committed log must carry the workload");
    assert_eq!(threads, reactor, "drivers committed different logs from identical inputs");
}

/// Runs the n=16 coded broadcast under `driver` and returns the
/// unanimously delivered payload.
fn coded_log_under(driver: NetDriver, payload: &[u8], chaos: ChaosConfig) -> Vec<u8> {
    let n = 16;
    let cfg = Config::max_resilience(n).expect("16 >= 3f + 1");
    let sender = NodeId::new(0);
    let mut rt: NetRuntime<_, Vec<u8>> =
        NetRuntime::new(n).timeout(TIMEOUT).driver(driver).chaos(chaos);
    for id in cfg.nodes() {
        let mine = (id == sender).then(|| payload.to_vec());
        rt.add_process(Box::new(CodedProcess::new(cfg, id, sender, mine)));
    }
    let report = rt.run();
    assert!(!report.timed_out, "{driver:?} coded broadcast stalled at n=16");
    assert!(!report.poisoned, "{driver:?} run recorded a thread panic");
    report.unanimous_output().unwrap_or_else(|| panic!("{driver:?} nodes diverged at n=16"))
}

/// The n=16 differential: a 64 KiB erasure-coded broadcast under frame
/// drops delivers the identical byte string under both drivers — the
/// reactor at the full f=5 mesh geometry (240 directed links per
/// driver), not just the n=4 smoke mesh.
#[test]
fn reactor_matches_threads_on_coded_rbc_at_n16() {
    let payload: Vec<u8> =
        (0..64 * 1024).map(|i| (i as u8).wrapping_mul(97).wrapping_add(13)).collect();
    let chaos = ChaosConfig { seed: 0xAB16, drop_per_mille: 30, ..ChaosConfig::default() };
    let threads = coded_log_under(NetDriver::Threads, &payload, chaos.clone());
    let reactor = coded_log_under(NetDriver::Reactor, &payload, chaos);
    assert_eq!(threads, payload, "threads driver corrupted the payload");
    assert_eq!(reactor, payload, "reactor driver corrupted the payload");
    assert_eq!(threads, reactor);
}

// ---------------------------------------------------------------------
// Gateway sequencing proptest
// ---------------------------------------------------------------------

/// One step of the randomized gateway schedule.
#[derive(Clone, Debug)]
enum GwOp {
    /// A client submission attempt: `(client, seq, mempool_accepts)`.
    Offer(u64, u64, bool),
    /// The log surfaced `(client, seq)` — only applied when that seq
    /// was actually admitted (the log cannot invent entries).
    Commit(u64, u64),
}

fn arb_gw_op() -> impl Strategy<Value = GwOp> {
    prop_oneof![
        (0u64..3, 1u64..12, proptest::bool::ANY).prop_map(|(c, s, ok)| GwOp::Offer(c, s, ok)),
        (0u64..3, 1u64..12).prop_map(|(c, s)| GwOp::Commit(c, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Per-client sequencing never reorders or drops acked submissions,
    /// no matter how offers, backpressure refusals, duplicates, gaps and
    /// commits interleave: the set of seqs admitted to the mempool for
    /// each client is exactly `1..=k` in ascending order, a
    /// backpressured offer never advances the window, and every commit
    /// ack refers to a previously admitted seq.
    #[test]
    fn gateway_sequencing_never_reorders_or_drops(
        ops in proptest::collection::vec(arb_gw_op(), 1..120),
    ) {
        let bp = Backpressure { pending: 8, capacity: 8 };
        let mut core = GatewayCore::new();
        // The mempool tape: every admission, in call order.
        let mut admitted: Vec<(u64, u64)> = Vec::new();
        // Reference model: per-client high-water marks.
        let mut model_admitted = std::collections::BTreeMap::<u64, u64>::new();
        let mut model_committed = std::collections::BTreeMap::<u64, u64>::new();

        for op in &ops {
            match *op {
                GwOp::Offer(client, seq, accepts) => {
                    let hi = model_admitted.get(&client).copied().unwrap_or(0);
                    let before = core.expected(client);
                    let outcome = core.offer(client, seq, || {
                        admitted.push((client, seq));
                        if accepts { Ok(()) } else { Err(bp) }
                    });
                    match outcome {
                        OfferOutcome::Accepted => {
                            prop_assert_eq!(seq, hi + 1, "admitted out of sequence");
                            model_admitted.insert(client, seq);
                        }
                        OfferOutcome::Backpressured(_) => {
                            prop_assert_eq!(seq, hi + 1, "backpressure for a non-next seq");
                            prop_assert_eq!(
                                core.expected(client), before,
                                "backpressure advanced the window"
                            );
                            // The refused admission never reached the
                            // mempool's accepted state; drop it from the
                            // tape the way `OrderProcess::submit` does.
                            prop_assert_eq!(admitted.pop(), Some((client, seq)));
                        }
                        OfferOutcome::DuplicateCommitted => {
                            let committed = model_committed.get(&client).copied().unwrap_or(0);
                            prop_assert!(seq <= committed, "spurious re-ack");
                        }
                        OfferOutcome::DuplicateInFlight => {
                            prop_assert!(seq <= hi, "in-flight duplicate above the window");
                        }
                        OfferOutcome::Gap { expected } => {
                            prop_assert_eq!(expected, hi + 1);
                            prop_assert!(seq > hi + 1, "gap verdict for an in-window seq");
                        }
                    }
                }
                GwOp::Commit(client, seq) => {
                    // Only seqs the gateway admitted can surface in the
                    // replicated log.
                    let hi = model_admitted.get(&client).copied().unwrap_or(0);
                    if seq <= hi {
                        prop_assert!(core.mark_committed(client, seq), "lost an admitted client");
                        let slot = model_committed.entry(client).or_insert(0);
                        *slot = (*slot).max(seq);
                    }
                }
            }
        }

        // The mempool tape holds every acked submission exactly once,
        // per client in ascending contiguous order: nothing reordered,
        // nothing dropped.
        for (client, hi) in &model_admitted {
            let seqs: Vec<u64> =
                admitted.iter().filter(|(c, _)| c == client).map(|&(_, s)| s).collect();
            let expect: Vec<u64> = (1..=*hi).collect();
            prop_assert_eq!(&seqs, &expect, "client {} mempool tape diverged", client);
            prop_assert_eq!(core.expected(*client), hi + 1);
        }
    }
}

// ---------------------------------------------------------------------
// Bugfix regressions
// ---------------------------------------------------------------------

/// A two-node process that chatters forever and never produces an
/// output — traffic to park chaos-delay sleeps on, with no way for the
/// run to end except the timeout.
struct Chatter {
    id: NodeId,
}

impl Process for Chatter {
    type Msg = Vec<u8>;
    type Output = u64;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<Effect<Vec<u8>, u64>> {
        vec![Effect::Send { to: NodeId::new(1 - self.id.index()), msg: vec![1] }]
    }

    fn on_message(&mut self, from: NodeId, _msg: &Vec<u8>) -> Vec<Effect<Vec<u8>, u64>> {
        vec![Effect::Send { to: from, msg: vec![1] }]
    }

    fn output(&self) -> Option<u64> {
        None
    }
}

/// Regression for the setup-panic bugfix: pointing every node's
/// listener at an already-claimed concrete port must surface as
/// `Err(SetupError::Bind { node: 0, .. })` from `try_run`, not a panic
/// — and before any cluster thread has started.
#[test]
fn claimed_port_is_a_typed_setup_error_not_a_panic() {
    // Claim an ephemeral port for the duration of the test.
    let claimed = std::net::TcpListener::bind("127.0.0.1:0").expect("claim a port");
    let addr = claimed.local_addr().expect("claimed port has an address");

    for driver in [NetDriver::Threads, NetDriver::Reactor] {
        let mut rt: NetRuntime<Vec<u8>, u64> =
            NetRuntime::new(2).timeout(TIMEOUT).driver(driver).bind_addr(addr);
        for i in 0..2 {
            rt.add_process(Box::new(Chatter { id: NodeId::new(i) }));
        }
        match rt.try_run() {
            Err(SetupError::Bind { node, source }) => {
                assert_eq!(node, 0, "{driver:?}: the first bind attempt must fail");
                assert_eq!(source.kind(), std::io::ErrorKind::AddrInUse, "{driver:?}");
            }
            Err(other) => panic!("{driver:?}: wrong setup error: {other}"),
            Ok(_) => panic!("{driver:?}: binding a claimed port succeeded?"),
        }
    }
}

/// Regression for the uninterruptible-sleep bugfix: with every frame
/// delayed five seconds by chaos, the transport threads sit parked in
/// delay waits when the run times out. Shutdown must interrupt those
/// waits: the whole run — teardown included — finishes in a fraction of
/// one injected delay, where the old blocking sleeps stalled teardown
/// for the full five seconds per parked thread.
#[test]
fn shutdown_interrupts_chaos_and_backoff_sleeps() {
    let chaos = ChaosConfig {
        seed: 5,
        delay_per_mille: 1000,
        max_delay_ms: 5_000,
        ..ChaosConfig::default()
    };
    for driver in [NetDriver::Threads, NetDriver::Reactor] {
        let started = Instant::now();
        let mut rt: NetRuntime<Vec<u8>, u64> = NetRuntime::new(2)
            .timeout(Duration::from_millis(500))
            .driver(driver)
            .chaos(chaos.clone());
        for i in 0..2 {
            rt.add_process(Box::new(Chatter { id: NodeId::new(i) }));
        }
        let report = rt.run();
        let total = started.elapsed();
        assert!(report.timed_out, "{driver:?}: a chatter run can only end by timeout");
        assert!(
            total < Duration::from_secs(4),
            "{driver:?}: teardown took {total:?} — shutdown stalled in a chaos/backoff sleep"
        );
    }
}

/// A recording sink that panics on the first `LinkLogPeak` it sees —
/// i.e. inside a supervised transport thread at teardown, after the
/// cluster has decided.
struct PanicOnceSink {
    events: Vec<(u64, NodeId, Event)>,
    armed: bool,
}

impl Sink for PanicOnceSink {
    fn on_event(&mut self, at: u64, node: NodeId, event: &Event) {
        if self.armed && matches!(event, Event::LinkLogPeak { .. }) {
            self.armed = false;
            panic!("injected observer failure");
        }
        self.events.push((at, node, event.clone()));
    }
}

/// Regression for the poison-masking bugfix: a panic in a runtime
/// thread (injected here through a sink that blows up mid-teardown)
/// must surface as `RuntimeReport::poisoned` plus a `PoisonDetected`
/// event — not be silently ridden through by the poison-tolerant mutex
/// locks. The run itself still completes: supervision contains the
/// panic, it does not cascade.
#[test]
fn panicked_runtime_thread_is_reported_not_masked() {
    let (obs, shared) = Obs::new(PanicOnceSink { events: Vec::new(), armed: true });
    let cfg = Config::new(4, 1).expect("4 >= 3f + 1");
    let mut rt: NetRuntime<Wire, Value> = NetRuntime::new(4).timeout(TIMEOUT).observer(obs.clone());
    for id in cfg.nodes() {
        rt.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            Value::One,
            LocalCoin::new(23, id),
            BrachaOptions::default(),
        )));
    }
    let report = rt.run();
    drop(obs);

    assert!(!report.timed_out, "the injected panic must not stall the run");
    assert!(report.all_correct_decided());
    assert_eq!(report.unanimous_output(), Some(Value::One));
    assert!(report.poisoned, "a panicked runtime thread went unreported");

    let events = std::mem::take(&mut shared.lock().events);
    assert!(
        events.iter().any(|(_, _, ev)| matches!(ev, Event::PoisonDetected { .. })),
        "no PoisonDetected event reached the sink"
    );
}
