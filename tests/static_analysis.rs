//! Tier-1 gate: the workspace must satisfy `bft-lint` with an empty
//! baseline, and the baseline file must be byte-for-byte reproducible.
//!
//! This is the same check CI's `bft-lint` job runs, wired into `cargo
//! test` so a bare threshold, stray wall-clock read, or naked unwrap
//! fails the ordinary test suite too.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let report = bft_lint::analyze_workspace(workspace_root()).expect("workspace readable");
    assert!(report.files_scanned > 30, "walk looks truncated: {}", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "bft-lint found {} non-baselined violation(s):\n{}\n\nFix the code or add a \
         reasoned `// lint: allow(<rule>) — <reason>` at the site.",
        report.findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn checked_in_baseline_is_current_and_reproducible() {
    let report = bft_lint::analyze_workspace(workspace_root()).expect("workspace readable");
    let rendered = bft_lint::render_baseline(&report);
    let on_disk = std::fs::read_to_string(workspace_root().join("lint.baseline"))
        .expect("lint.baseline is checked in");
    assert_eq!(
        rendered, on_disk,
        "lint.baseline is stale; regenerate with `cargo run -p lint -- --write-baseline`"
    );
    // Reproducible: a second analysis renders identical bytes.
    let again = bft_lint::analyze_workspace(workspace_root()).expect("workspace readable");
    assert_eq!(bft_lint::render_baseline(&again), rendered);
}

#[test]
fn baseline_is_empty() {
    // The acceptance bar for this workspace: no grandfathered findings at
    // all. Every pre-existing violation was fixed or carries a reasoned
    // per-site annotation.
    let on_disk = std::fs::read_to_string(workspace_root().join("lint.baseline"))
        .expect("lint.baseline is checked in");
    assert!(
        bft_lint::parse_baseline(&on_disk).is_empty(),
        "the baseline must stay empty; fix or annotate new findings instead of baselining them"
    );
}

#[test]
fn escape_hatches_are_reasoned_and_bounded() {
    let report = bft_lint::analyze_workspace(workspace_root()).expect("workspace readable");
    for site in &report.allowed {
        assert!(
            site.reason.len() >= 10,
            "{}:{} allow annotation reason is too thin: {:?}",
            site.file,
            site.line,
            site.reason
        );
    }
    // Growth guard: new escape hatches deserve review. Raise this only
    // with a reason in the PR description. Raised 16 → 24 when bft-net
    // joined the walked crates: a wall-clock TCP transport legitimately
    // reads real time and sleeps (all concentrated in its clock module)
    // and uses `expect` on unrecoverable host-setup failures. Raised
    // 24 → 26 with the reactor transport: shim-poll's non-Linux
    // fallback parks with a real sleep (determinism), and the client
    // gateway's per-client resume windows are a keyed map with no safe
    // eviction (unbounded-map).
    assert!(
        report.allowed.len() <= 26,
        "allowed-site count grew to {}; keep the escape hatch rare",
        report.allowed.len()
    );
}

#[test]
fn net_crate_is_walked_and_annotated() {
    // Regression guard for the transport crate's lint registration: the
    // walk must include `crates/net`, and its wall-clock escape hatches
    // must carry reasoned annotations (they show up in `allowed`, not in
    // `findings`).
    let report = bft_lint::analyze_workspace(workspace_root()).expect("workspace readable");
    assert!(
        report.allowed.iter().any(|site| site.file.starts_with("crates/net/")),
        "expected annotated allow sites under crates/net; is the crate registered in \
         PROTOCOL_CRATES?"
    );
    assert!(
        report.findings.iter().all(|f| !f.file.starts_with("crates/net/")),
        "bft-net has unannotated lint findings"
    );
}
