//! Termination-gadget and state-bound tests: decided nodes halt, state
//! stays garbage-collected over long runs, and the simulator's
//! `AllCorrectHalted` stop policy composes with the protocol's halting.

use async_bft::coin::{CommonCoin, FixedCoin, LocalCoin};
use async_bft::consensus::{BrachaNode, BrachaOptions, BrachaProcess, Transition};
use async_bft::sim::{StopPolicy, UniformDelay, World, WorldConfig};
use async_bft::types::{Config, NodeId, Value};

#[test]
fn whole_cluster_halts_not_just_decides() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let mut world = World::new(
        WorldConfig::new(n).stop_policy(StopPolicy::AllCorrectHalted),
        UniformDelay::new(1, 10, 3),
    );
    for id in cfg.nodes() {
        let input = Value::from_bool(id.index() % 2 == 0);
        world.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            input,
            LocalCoin::new(3, id),
            BrachaOptions::default(),
        )));
    }
    let report = world.run();
    assert_eq!(report.stop, async_bft::sim::StopReason::Completed);
    assert!(report.all_correct_decided());
    // Everyone decided within `extra_rounds` of the earliest decision.
    let min = report.output_rounds.values().min().copied().unwrap();
    let max = report.output_rounds.values().max().copied().unwrap();
    assert!(max - min <= 2, "stragglers must decide within two rounds");
}

/// With pruning on, a long multi-round run keeps the validator's tracked
/// rounds bounded (no unbounded state growth).
#[test]
fn validator_state_is_bounded_with_pruning() {
    // A fixed contrarian coin prevents early convergence so the run
    // spans many rounds; cap with max_rounds and inspect the node.
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let opts = BrachaOptions { max_rounds: 40, ..BrachaOptions::default() };
    let mut nodes: Vec<BrachaNode<FixedCoin>> = (0..n)
        .map(|i| {
            // Coins oppose the node parity: the cluster keeps flip-flopping.
            let v = Value::from_bool(i % 2 == 0);
            BrachaNode::new(cfg, NodeId::new(i), FixedCoin::new(v), opts)
        })
        .collect();

    // Synchronous pump.
    let mut queue: Vec<(NodeId, async_bft::consensus::Wire)> = Vec::new();
    for (i, node) in nodes.iter_mut().enumerate() {
        let input = Value::from_bool(i < 2);
        for t in node.start(input) {
            if let Transition::Broadcast(w) = t {
                queue.push((NodeId::new(i), w));
            }
        }
    }
    let mut steps = 0usize;
    while let Some((from, wire)) = queue.pop() {
        steps += 1;
        assert!(steps < 3_000_000, "pump did not quiesce");
        for node in nodes.iter_mut() {
            let ts = node.on_message(from, &wire);
            let me = node.me();
            for t in ts {
                if let Transition::Broadcast(w) = t {
                    queue.push((me, w));
                }
            }
        }
    }
    for node in &nodes {
        assert!(
            node.tracked_rounds() <= 4,
            "validator state leaked: {} rounds tracked at {}",
            node.tracked_rounds(),
            node.me()
        );
    }
}

/// The common coin converges even when inputs and schedule conspire; and
/// once all correct halt, the queue drains without further protocol
/// activity (no zombie chatter).
#[test]
fn no_zombie_chatter_after_halt() {
    let n = 7;
    let cfg = Config::new(n, 2).unwrap();
    let mut world = World::new(
        WorldConfig::new(n).stop_policy(StopPolicy::QueueDrain),
        UniformDelay::new(1, 10, 9),
    );
    for id in cfg.nodes() {
        let input = Value::from_bool(id.index() < 3);
        world.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            input,
            CommonCoin::new(9, 0),
            BrachaOptions::default(),
        )));
    }
    let report = world.run();
    // Queue drained means no infinite message loop once everyone halted.
    assert!(report.all_correct_decided());
    assert!(report.metrics.dropped_to_halted > 0 || report.metrics.delivered > 0);
}

/// Pumps a full ordering run synchronously and returns the peak
/// retained state observed at any node: (epochs, ABA instances, RBC
/// instances). Asserts completion, agreement and full wind-down.
fn pump_ordering(epochs: u64, depth: usize) -> (usize, usize, usize) {
    pump_ordering_with(epochs, depth, async_bft::rbc::RbcKind::Bracha).0
}

/// Like [`pump_ordering`], with a selectable RBC kind. Also returns the
/// ordered log and the peak bytes of buffered coded fragments at any
/// node (zero for Bracha).
fn pump_ordering_with(
    epochs: u64,
    depth: usize,
    rbc: async_bft::rbc::RbcKind,
) -> ((usize, usize, usize), async_bft::order::OrderLog, usize) {
    use async_bft::order::{OrderOptions, OrderProcess};
    use async_bft::types::{Effect, Process};
    use std::collections::VecDeque;

    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let opts = OrderOptions { batch_max: 2, pipeline_depth: depth, epochs, rbc };
    let mut nodes: Vec<OrderProcess<CommonCoin>> = (0..n)
        .map(|i| {
            let workload = (0..2 * epochs).map(|t| vec![i as u8, t as u8]).collect();
            OrderProcess::new(cfg, NodeId::new(i), opts, workload, |inst| CommonCoin::new(5, inst))
        })
        .collect();

    // Synchronous FIFO pump; broadcasts reach every node (sender
    // included), unicasts only their target.
    let mut queue = VecDeque::new();
    for node in nodes.iter_mut() {
        let me = node.id();
        for e in node.on_start() {
            match e {
                Effect::Broadcast { msg } => {
                    for to in 0..n {
                        queue.push_back((me, NodeId::new(to), msg.clone()));
                    }
                }
                Effect::Send { to, msg } => queue.push_back((me, to, msg)),
                _ => {}
            }
        }
    }
    let (mut max_rbc, mut max_epochs, mut max_abas) = (0usize, 0usize, 0usize);
    let mut max_frag_bytes = 0usize;
    let mut steps = 0usize;
    while let Some((from, to, msg)) = queue.pop_front() {
        steps += 1;
        assert!(steps < 3_000_000, "pump did not quiesce");
        let node = &mut nodes[to.index()];
        let me = node.id();
        for e in node.on_message(from, &msg) {
            match e {
                Effect::Broadcast { msg } => {
                    for t in 0..n {
                        queue.push_back((me, NodeId::new(t), msg.clone()));
                    }
                }
                Effect::Send { to, msg } => queue.push_back((me, to, msg)),
                _ => {}
            }
        }
        max_rbc = max_rbc.max(node.rbc_instance_count());
        max_epochs = max_epochs.max(node.live_epochs());
        max_abas = max_abas.max(node.retained_aba_count());
        max_frag_bytes = max_frag_bytes.max(node.rbc_fragment_bytes());
    }

    // The full run completed and all logs agree.
    let first = nodes[0].output().expect("node 0 must finish all epochs");
    assert!(!first.is_empty());
    for node in &nodes {
        assert_eq!(node.committed_epochs(), epochs);
        assert_eq!(node.output().as_ref(), Some(&first));
        assert_eq!(node.live_epochs(), 0, "wind-down must collect every epoch");
        assert_eq!(node.rbc_instance_count(), 0);
        assert_eq!(
            node.rbc_fragment_bytes(),
            0,
            "fragment buffers must be collected with their instances"
        );
    }
    ((max_epochs, max_abas, max_rbc), first, max_frag_bytes)
}

/// The ordering engine's tentpole memory property: over a long run
/// (many more epochs than the pipeline depth), the retained RBC and
/// agreement state stays bounded by the pipeline depth — per-epoch GC
/// actually collects, instead of accreting one ACS per epoch.
#[test]
fn ordering_state_is_bounded_by_pipeline_depth() {
    let (n, depth) = (4usize, 2usize);
    let short = pump_ordering(12, depth);
    let long = pump_ordering(24, depth);
    println!("peak retained state: 12 epochs -> {short:?}, 24 epochs -> {long:?}");

    // The leak detector: doubling the horizon must not move the peak.
    // (Identical schedules per epoch under the FIFO pump make this exact.)
    assert_eq!(short, long, "retained state grew with the epoch horizon: a per-epoch leak");

    // And the peak itself is a small multiple of the pipeline depth:
    // in-flight epochs (≤ depth) plus the constant halting-gadget
    // wind-down tail — nowhere near the 24-epoch horizon.
    let (max_epochs, max_abas, max_rbc) = long;
    let slack = 2 * depth + 2;
    assert!(max_epochs <= slack, "retained epochs {max_epochs} exceed 2·depth+2 = {slack}");
    assert!(max_abas <= n * slack, "retained ABA state {max_abas} exceeds n·(2·depth+2)");
    assert!(max_rbc <= n * slack, "live RBC instances {max_rbc} exceed n·(2·depth+2)");
}

/// Pumps a full replicated-state-machine run synchronously and returns
/// the peak retained state at any node: (ordered-log slots, live
/// epochs, ABA instances, RBC instances across batch + checkpoint
/// muxes). Asserts completion, byte-identical state hashes, and a
/// certified final checkpoint everywhere.
fn pump_smr(epochs: u64, interval: u64) -> (usize, usize, usize, usize) {
    use async_bft::order::OrderOptions;
    use async_bft::smr::{seeded_workload, SmrOptions, SmrProcess};
    use async_bft::types::{Effect, Process};
    use std::collections::VecDeque;

    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let opts = SmrOptions {
        order: OrderOptions {
            batch_max: 2,
            pipeline_depth: 2,
            epochs,
            rbc: async_bft::rbc::RbcKind::Bracha,
        },
        checkpoint_interval: interval,
    };
    let mut nodes: Vec<SmrProcess<CommonCoin>> = (0..n)
        .map(|i| {
            let id = NodeId::new(i);
            let workload = seeded_workload(7, id, 2 * epochs as usize);
            SmrProcess::new(cfg, id, opts, workload, |inst| CommonCoin::new(5, inst))
        })
        .collect();

    let mut queue = VecDeque::new();
    for node in nodes.iter_mut() {
        let me = node.id();
        for e in node.on_start() {
            match e {
                Effect::Broadcast { msg } => {
                    for to in 0..n {
                        queue.push_back((me, NodeId::new(to), msg.clone()));
                    }
                }
                Effect::Send { to, msg } => queue.push_back((me, to, msg)),
                _ => {}
            }
        }
    }
    let (mut max_slots, mut max_epochs, mut max_abas, mut max_rbc) =
        (0usize, 0usize, 0usize, 0usize);
    let mut steps = 0usize;
    while let Some((from, to, msg)) = queue.pop_front() {
        steps += 1;
        assert!(steps < 3_000_000, "pump did not quiesce");
        let node = &mut nodes[to.index()];
        let me = node.id();
        for e in node.on_message(from, &msg) {
            match e {
                Effect::Broadcast { msg } => {
                    for t in 0..n {
                        queue.push_back((me, NodeId::new(t), msg.clone()));
                    }
                }
                Effect::Send { to, msg } => queue.push_back((me, to, msg)),
                _ => {}
            }
        }
        max_slots = max_slots.max(node.retained_log_slots());
        max_epochs = max_epochs.max(node.live_epochs());
        max_abas = max_abas.max(node.retained_aba_count());
        max_rbc = max_rbc.max(node.rbc_instance_count());
    }

    // The run completed: every node applied every epoch, holds the
    // final-boundary certificate, and computes the same state hash.
    let hash = nodes[0].state().state_hash();
    for node in &nodes {
        assert_eq!(node.committed_epochs(), epochs);
        assert_eq!(node.state().applied_epoch(), epochs);
        assert_eq!(node.state().state_hash(), hash, "state diverged at {}", node.id());
        let (cert_epoch, cert_hash) = node.certificate().expect("final checkpoint certified");
        assert_eq!(cert_epoch, epochs);
        assert_eq!(cert_hash, hash);
        assert_eq!(node.live_epochs(), 0, "wind-down must collect every epoch");
    }
    (max_slots, max_epochs, max_abas, max_rbc)
}

/// The state-machine tentpole memory property: checkpoint certification
/// truncates the ordered log and collects per-epoch buffers, so over
/// ≥ 4 checkpoint cycles the peak retained state is *flat* as the
/// horizon doubles — nothing accretes per epoch beyond the window the
/// checkpoint interval and pipeline depth define.
#[test]
fn checkpointed_smr_state_is_bounded_by_the_interval() {
    let interval = 2u64;
    let short = pump_smr(8, interval); // 4 checkpoint cycles
    let long = pump_smr(16, interval); // 8 checkpoint cycles
    println!("peak retained state: 8 epochs -> {short:?}, 16 epochs -> {long:?}");
    assert_eq!(short, long, "retained state grew with the epoch horizon: a per-epoch leak");

    // The peak itself is a small window, nowhere near the horizon:
    // slots from the un-truncated epochs (≤ (interval + depth + 1)
    // epochs × n batches × 2 txs), and the usual pipeline-bounded
    // protocol state.
    let (max_slots, max_epochs, max_abas, max_rbc) = long;
    let n = 4usize;
    let window = (interval as usize + 2 + 1) * n * 2;
    assert!(max_slots <= window, "retained log slots {max_slots} exceed the window {window}");
    let slack = 2 * 2 + 2;
    assert!(max_epochs <= slack, "retained epochs {max_epochs} exceed 2·depth+2 = {slack}");
    assert!(max_abas <= n * slack, "retained ABA state {max_abas} exceeds n·(2·depth+2)");
    // RBC instances span the batch mux plus the checkpoint mux (one
    // instance per node per in-window boundary).
    assert!(max_rbc <= 2 * n * slack, "live RBC instances {max_rbc} exceed 2n·(2·depth+2)");
}

/// The coded-RBC memory property: per-epoch GC (`RbcMux::retain`) drops
/// fragment buffers along with their instances — peak buffered fragment
/// bytes stay flat as the epoch horizon doubles, and the coded engine
/// orders the exact log the Bracha engine does.
#[test]
fn coded_ordering_collects_fragment_buffers() {
    use async_bft::rbc::RbcKind;
    let depth = 2usize;
    let (short_state, short_log, short_frag) = pump_ordering_with(8, depth, RbcKind::Coded);
    let (long_state, _long_log, long_frag) = pump_ordering_with(16, depth, RbcKind::Coded);
    assert!(short_frag > 0, "coded runs must actually buffer fragments");
    assert_eq!(
        short_frag, long_frag,
        "peak fragment bytes grew with the horizon: a per-epoch leak"
    );
    assert_eq!(
        short_state, long_state,
        "retained state grew with the epoch horizon: a per-epoch leak"
    );

    // Differential: same epochs, same workload, same coins — the coded
    // engine's ordered log is byte-identical to the Bracha engine's.
    let (_, bracha_log, bracha_frag) = pump_ordering_with(8, depth, RbcKind::Bracha);
    assert_eq!(bracha_frag, 0, "bracha broadcasts never buffer fragments");
    assert_eq!(short_log, bracha_log, "coded and bracha engines must order identical logs");
}
