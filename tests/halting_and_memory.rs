//! Termination-gadget and state-bound tests: decided nodes halt, state
//! stays garbage-collected over long runs, and the simulator's
//! `AllCorrectHalted` stop policy composes with the protocol's halting.

use async_bft::coin::{CommonCoin, FixedCoin, LocalCoin};
use async_bft::consensus::{BrachaNode, BrachaOptions, BrachaProcess, Transition};
use async_bft::sim::{StopPolicy, UniformDelay, World, WorldConfig};
use async_bft::types::{Config, NodeId, Value};

#[test]
fn whole_cluster_halts_not_just_decides() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let mut world = World::new(
        WorldConfig::new(n).stop_policy(StopPolicy::AllCorrectHalted),
        UniformDelay::new(1, 10, 3),
    );
    for id in cfg.nodes() {
        let input = Value::from_bool(id.index() % 2 == 0);
        world.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            input,
            LocalCoin::new(3, id),
            BrachaOptions::default(),
        )));
    }
    let report = world.run();
    assert_eq!(report.stop, async_bft::sim::StopReason::Completed);
    assert!(report.all_correct_decided());
    // Everyone decided within `extra_rounds` of the earliest decision.
    let min = report.output_rounds.values().min().copied().unwrap();
    let max = report.output_rounds.values().max().copied().unwrap();
    assert!(max - min <= 2, "stragglers must decide within two rounds");
}

/// With pruning on, a long multi-round run keeps the validator's tracked
/// rounds bounded (no unbounded state growth).
#[test]
fn validator_state_is_bounded_with_pruning() {
    // A fixed contrarian coin prevents early convergence so the run
    // spans many rounds; cap with max_rounds and inspect the node.
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let opts = BrachaOptions { max_rounds: 40, ..BrachaOptions::default() };
    let mut nodes: Vec<BrachaNode<FixedCoin>> = (0..n)
        .map(|i| {
            // Coins oppose the node parity: the cluster keeps flip-flopping.
            let v = Value::from_bool(i % 2 == 0);
            BrachaNode::new(cfg, NodeId::new(i), FixedCoin::new(v), opts)
        })
        .collect();

    // Synchronous pump.
    let mut queue: Vec<(NodeId, async_bft::consensus::Wire)> = Vec::new();
    for (i, node) in nodes.iter_mut().enumerate() {
        let input = Value::from_bool(i < 2);
        for t in node.start(input) {
            if let Transition::Broadcast(w) = t {
                queue.push((NodeId::new(i), w));
            }
        }
    }
    let mut steps = 0usize;
    while let Some((from, wire)) = queue.pop() {
        steps += 1;
        assert!(steps < 3_000_000, "pump did not quiesce");
        for node in nodes.iter_mut() {
            let ts = node.on_message(from, &wire);
            let me = node.me();
            for t in ts {
                if let Transition::Broadcast(w) = t {
                    queue.push((me, w));
                }
            }
        }
    }
    for node in &nodes {
        assert!(
            node.tracked_rounds() <= 4,
            "validator state leaked: {} rounds tracked at {}",
            node.tracked_rounds(),
            node.me()
        );
    }
}

/// The common coin converges even when inputs and schedule conspire; and
/// once all correct halt, the queue drains without further protocol
/// activity (no zombie chatter).
#[test]
fn no_zombie_chatter_after_halt() {
    let n = 7;
    let cfg = Config::new(n, 2).unwrap();
    let mut world = World::new(
        WorldConfig::new(n).stop_policy(StopPolicy::QueueDrain),
        UniformDelay::new(1, 10, 9),
    );
    for id in cfg.nodes() {
        let input = Value::from_bool(id.index() < 3);
        world.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            input,
            CommonCoin::new(9, 0),
            BrachaOptions::default(),
        )));
    }
    let report = world.run();
    // Queue drained means no infinite message loop once everyone halted.
    assert!(report.all_correct_decided());
    assert!(report.metrics.dropped_to_halted > 0 || report.metrics.delivered > 0);
}
