//! Adversarial-length wire-safety properties: every length/count prefix
//! a Byzantine peer controls is mutated to extreme values, and each
//! decoder must reject with a *typed* error — no panic, no allocation
//! sized by the hostile claim. These pin the decode-time caps
//! (`MAX_WIRE_NODE_INDEX`, the frame-payload cap on shard/byte-string
//! lengths, the batch count bound, and `ec::MAX_TOTAL_LEN`).

use async_bft::ec::{self, EcError, Fragment, MAX_TOTAL_LEN};
use async_bft::net::codec::MAX_WIRE_NODE_INDEX;
use async_bft::net::{Codec, DecodeError, Reader, MAX_PAYLOAD};
use async_bft::order::{decode_batch, encode_batch};
use async_bft::smr::{KvOp, SmrMessage};
use async_bft::types::NodeId;
use proptest::prelude::*;

/// Encodes a value through the wire codec into a fresh byte buffer.
fn to_bytes<T: Codec>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a full buffer, requiring it to be consumed exactly.
fn from_bytes<T: Codec>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Fragment wire layout: `index: u16 | total_len: u32 | shard_len: u32 |
/// shard bytes | proof_len: u16 | proof u64s`. Byte offset of the shard
/// length prefix.
const SHARD_LEN_OFFSET: usize = 2 + 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A hostile shard-length prefix past the frame cap is rejected as
    /// `Oversize` *before* any allocation sized by the claim; a claim
    /// the cap permits but the buffer cannot hold fails as a typed
    /// error too (truncation, never a panic).
    #[test]
    fn hostile_shard_length_is_typed(
        shard_len in 0usize..64,
        claim in MAX_PAYLOAD + 1..=u32::MAX,
    ) {
        let frag = Fragment {
            index: 3,
            total_len: 96,
            shard: vec![0x5A; shard_len],
            proof: vec![1, 2, 3],
        };
        let mut bytes = to_bytes(&frag);
        bytes[SHARD_LEN_OFFSET..SHARD_LEN_OFFSET + 4].copy_from_slice(&claim.to_le_bytes());
        prop_assert_eq!(from_bytes::<Fragment>(&bytes), Err(DecodeError::Oversize(claim)));
        // A within-cap claim larger than the buffer is a typed error.
        let truncating = MAX_PAYLOAD; // far beyond the 64-byte shard area
        bytes[SHARD_LEN_OFFSET..SHARD_LEN_OFFSET + 4].copy_from_slice(&truncating.to_le_bytes());
        prop_assert!(matches!(
            from_bytes::<Fragment>(&bytes),
            Err(DecodeError::Truncated { .. })
        ));
    }

    /// A node index above `MAX_WIRE_NODE_INDEX` is a typed `Invalid`
    /// error (downstream bitsets size per-node state by index).
    #[test]
    fn hostile_node_index_is_invalid(index in MAX_WIRE_NODE_INDEX as u32 + 1..=u32::MAX) {
        let bytes = index.to_le_bytes().to_vec();
        prop_assert!(matches!(
            from_bytes::<NodeId>(&bytes),
            Err(DecodeError::Invalid { what: "node index", .. })
        ));
        // The cap itself and everything below it round-trips.
        let ok = NodeId::new((index as usize) % (MAX_WIRE_NODE_INDEX + 1));
        prop_assert_eq!(from_bytes::<NodeId>(&to_bytes(&ok)), Ok(ok));
    }

    /// Byte-string and string length prefixes past the frame cap are
    /// `Oversize`; claims beyond the buffer are `Truncated`. Never a
    /// panic, never an allocation sized by the claim.
    #[test]
    fn hostile_byte_string_length_is_typed(
        len in 0usize..48,
        claim in 0u32..=u32::MAX,
    ) {
        let value: Vec<u8> = vec![0xC3; len];
        let mut bytes = to_bytes(&value);
        bytes[..4].copy_from_slice(&claim.to_le_bytes());
        match from_bytes::<Vec<u8>>(&bytes) {
            Ok(back) => prop_assert_eq!(back, value), // claim == len
            Err(DecodeError::Oversize(got)) => prop_assert!(got > MAX_PAYLOAD),
            Err(DecodeError::Truncated { .. }) => {
                prop_assert!(claim as usize > len && claim <= MAX_PAYLOAD)
            }
            Err(DecodeError::Trailing { .. }) => prop_assert!((claim as usize) < len),
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }

        let text = "x".repeat(len);
        let mut bytes = to_bytes(&text);
        bytes[..4].copy_from_slice(&claim.to_le_bytes());
        match from_bytes::<String>(&bytes) {
            Ok(back) => prop_assert_eq!(back, text),
            Err(DecodeError::Oversize(got)) => prop_assert!(got > MAX_PAYLOAD),
            Err(_) => {}
        }
    }

    /// A hostile batch count or entry length makes `decode_batch` fall
    /// back to the single-opaque-payload path — totality holds (all
    /// correct nodes decode the same bytes to the same entries) and the
    /// count never drives a loop or allocation.
    #[test]
    fn hostile_batch_prefixes_fall_back_to_opaque(
        txs in proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..16), 1..8),
        claim in 0u32..=u32::MAX,
    ) {
        let good = encode_batch(&txs);
        prop_assert_eq!(decode_batch(&good), txs);

        // Mutate the count prefix.
        let mut evil = good.clone();
        evil[..4].copy_from_slice(&claim.to_le_bytes());
        let decoded = decode_batch(&evil);
        if claim as usize == decode_batch(&good).len() {
            prop_assert_eq!(decoded.len(), claim as usize);
        } else {
            // Any other claim is malformed: one opaque entry, byte-equal
            // to the (mutated) body.
            prop_assert_eq!(decoded, vec![evil.clone()]);
        }

        // Mutate the first entry's length prefix to an extreme value.
        let mut evil = good;
        evil[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        prop_assert_eq!(decode_batch(&evil), vec![evil.clone()]);
    }

    /// Random garbage never panics any of the length-prefixed decoders.
    #[test]
    fn garbage_never_panics_decoders(bytes in proptest::collection::vec(0u8..=255, 0..96)) {
        let _ = from_bytes::<Fragment>(&bytes);
        let _ = from_bytes::<NodeId>(&bytes);
        let _ = from_bytes::<Vec<u8>>(&bytes);
        let _ = from_bytes::<String>(&bytes);
        let _ = decode_batch(&bytes);
        let _ = from_bytes::<SmrMessage>(&bytes);
        let _ = KvOp::decode(&bytes);
    }

    /// A hostile state-machine message discriminant is a typed
    /// `Invalid` error, never a panic, whatever bytes follow it.
    #[test]
    fn hostile_smr_discriminant_is_invalid(
        disc in 6u8..=u8::MAX,
        tail in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut bytes = vec![disc];
        bytes.extend_from_slice(&tail);
        prop_assert!(matches!(
            from_bytes::<SmrMessage>(&bytes),
            Err(DecodeError::Invalid { what: "smr message discriminant", .. })
        ));
    }

    /// Hostile length prefixes inside a `CkptInfo`/`ChunkReq` body (the
    /// fixed-width state-transfer arms) and truncations of any SMR
    /// message are typed errors; intact encodings round-trip.
    #[test]
    fn smr_message_truncation_is_typed(
        epoch in 0u64..=u64::MAX,
        hash in 0u64..=u64::MAX,
        cut in 0usize..17,
    ) {
        let msg = SmrMessage::CkptInfo { epoch, hash };
        let bytes = to_bytes(&msg);
        prop_assert_eq!(from_bytes::<SmrMessage>(&bytes).as_ref(), Ok(&msg));
        let cut = cut.min(bytes.len() - 1);
        if cut > 0 {
            prop_assert!(matches!(
                from_bytes::<SmrMessage>(&bytes[..bytes.len() - cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }

        let msg = SmrMessage::ChunkReq { epoch };
        let bytes = to_bytes(&msg);
        prop_assert_eq!(from_bytes::<SmrMessage>(&bytes), Ok(msg));
    }
}

proptest! {
    // Fewer cases: each runs a real erasure-coding round.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fragments claiming a `total_len` past `MAX_TOTAL_LEN` are
    /// rejected by `reconstruct` with a typed error before the claim
    /// sizes shard interpolation or the output buffer.
    #[test]
    fn hostile_total_len_is_rejected_by_reconstruct(
        payload in proptest::collection::vec(0u8..=255, 1..64),
        excess in 1u32..=u32::MAX - MAX_TOTAL_LEN,
    ) {
        let (n, k) = (4usize, 2usize);
        let coded = ec::encode(&payload, n, k).expect("valid geometry");
        // Honest fragments reconstruct the payload.
        let back = ec::reconstruct(coded.root, n, k, &coded.fragments[..k]);
        prop_assert_eq!(back, Ok(payload));

        // A Byzantine sender rewrites every total_len to a hostile claim.
        let claim = MAX_TOTAL_LEN + excess;
        let evil: Vec<Fragment> = coded
            .fragments
            .iter()
            .map(|f| Fragment { total_len: claim, ..f.clone() })
            .collect();
        prop_assert_eq!(
            ec::reconstruct(coded.root, n, k, &evil[..k]),
            Err(EcError::PayloadTooLarge { len: claim as usize })
        );
    }
}

/// The boundary itself: a fragment set claiming exactly `MAX_TOTAL_LEN`
/// is *not* rejected for size (it fails later checks instead), while
/// one byte more is.
#[test]
fn total_len_cap_is_exact() {
    let coded = ec::encode(&[1, 2, 3, 4], 4, 2).unwrap();
    let at_cap: Vec<Fragment> = coded
        .fragments
        .iter()
        .map(|f| Fragment { total_len: MAX_TOTAL_LEN, ..f.clone() })
        .collect();
    assert_ne!(
        ec::reconstruct(coded.root, 4, 2, &at_cap[..2]),
        Err(EcError::PayloadTooLarge { len: MAX_TOTAL_LEN as usize })
    );
    let over: Vec<Fragment> = coded
        .fragments
        .iter()
        .map(|f| Fragment { total_len: MAX_TOTAL_LEN + 1, ..f.clone() })
        .collect();
    assert_eq!(
        ec::reconstruct(coded.root, 4, 2, &over[..2]),
        Err(EcError::PayloadTooLarge { len: MAX_TOTAL_LEN as usize + 1 })
    );
}
