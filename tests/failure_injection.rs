//! Failure-injection suite: crashes at every protocol stage, partitions,
//! starved nodes, and mixed adversary cocktails.

use async_bft::types::Value;
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};

/// Crashing at different points of the protocol (before start, during
/// round 1, after several rounds) never hurts the survivors.
#[test]
fn crashes_at_every_stage_are_tolerated() {
    for after in [0u64, 1, 5, 20, 100] {
        for seed in 0..5 {
            let report = Cluster::new(7)
                .unwrap()
                .seed(seed)
                .split_inputs(3)
                .faults(2, FaultKind::Crash { after })
                .run();
            assert!(
                report.all_correct_decided(),
                "crash after {after} events broke termination (seed {seed})"
            );
            assert!(report.agreement_holds(), "crash after {after} broke agreement");
        }
    }
}

/// A mixed cocktail: one crash + one liar, the worst of both worlds.
#[test]
fn mixed_adversaries_are_tolerated() {
    for seed in 0..10 {
        let report = Cluster::new(7)
            .unwrap()
            .seed(seed)
            .inputs(vec![Value::One; 7])
            .fault(0, FaultKind::Crash { after: 10 })
            .fault(1, FaultKind::FlipValue)
            .run();
        assert_eq!(
            report.unanimous_output(),
            Some(Value::One),
            "seed {seed}: mixed adversaries broke validity"
        );
    }
}

/// Network partitions delay but never derail consensus.
#[test]
fn partition_heals_and_consensus_completes() {
    for heal_at in [100u64, 500, 2000] {
        let report = Cluster::new(4)
            .unwrap()
            .seed(1)
            .split_inputs(2)
            .schedule(Schedule::Partition { near: 1, far: 150, heal_at })
            .run();
        assert!(report.all_correct_decided(), "heal_at {heal_at}");
        assert!(report.agreement_holds(), "heal_at {heal_at}");
        // Later healing must not make the decision earlier; it generally
        // makes it later (sanity check on the simulated clock).
        assert!(report.end_time.ticks() > 0);
    }
}

/// One starved node catches up and decides the same value (no stale
/// decision), even when it lags by two orders of magnitude.
#[test]
fn starved_node_catches_up_consistently() {
    for seed in 0..5 {
        let report = Cluster::new(4)
            .unwrap()
            .seed(seed)
            .split_inputs(2)
            .schedule(Schedule::Laggard { victim: 3, fast: 1, slow: 100 })
            .run();
        assert!(report.all_correct_decided(), "seed {seed}");
        assert!(report.agreement_holds(), "seed {seed}");
    }
}

/// Byzantine nodes beyond f are out of contract — but *fewer* than f
/// faults must of course also work (the bound is an upper bound).
#[test]
fn fewer_faults_than_f_work_too() {
    for actual in 0..=3usize {
        let report = Cluster::new(10)
            .unwrap() // f = 3
            .seed(7)
            .split_inputs(5)
            .faults(actual, FaultKind::RandomValue)
            .run();
        assert!(report.all_correct_decided(), "{actual} faults");
        assert!(report.agreement_holds(), "{actual} faults");
    }
}

/// The adversary owning both the faulty nodes AND the schedule.
#[test]
fn coordinated_liars_and_scheduler() {
    for seed in 0..5 {
        let report = Cluster::new(7)
            .unwrap()
            .seed(seed)
            .inputs(vec![Value::Zero; 7])
            .coin(CoinChoice::Local)
            .faults(2, FaultKind::FlipValue)
            .schedule(Schedule::FavorFaulty { favored: 2, fast: 1, slow: 12 })
            .run();
        assert_eq!(
            report.unanimous_output(),
            Some(Value::Zero),
            "seed {seed}: coordinated attack broke validity"
        );
    }
}
