//! Cross-crate property tests: the three consensus properties hold over
//! randomly drawn system sizes, inputs, fault mixes, seeds and schedules.

use async_bft::types::Value;
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
use proptest::prelude::*;

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Fixed(1)),
        (1u64..5, 5u64..30).prop_map(|(min, max)| Schedule::Uniform { min, max }),
        (1u64..3, 5u64..12).prop_map(|(fast, slow)| Schedule::Split { fast, slow }),
        (1u64..3, 20u64..80, 50u64..400)
            .prop_map(|(near, far, heal_at)| { Schedule::Partition { near, far, heal_at } }),
    ]
}

fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (1u64..60).prop_map(|after| FaultKind::Crash { after }),
        Just(FaultKind::Mute),
        Just(FaultKind::FlipValue),
        Just(FaultKind::RandomValue),
        Just(FaultKind::AlwaysFlag),
        Just(FaultKind::Seesaw),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Agreement + termination for arbitrary correct inputs, maximal
    /// faults of arbitrary kinds, arbitrary schedules.
    #[test]
    fn agreement_and_termination_hold(
        n in 4usize..11,
        seed in 0u64..10_000,
        ones in 0usize..11,
        schedule in arb_schedule(),
        kinds in proptest::collection::vec(arb_fault_kind(), 3),
        coin_common in proptest::bool::ANY,
    ) {
        let mut cluster = Cluster::new(n).unwrap();
        let f = cluster.config().f();
        cluster = cluster
            .seed(seed)
            .split_inputs(ones.min(n))
            .coin(if coin_common { CoinChoice::Common } else { CoinChoice::Local })
            .schedule(schedule);
        for i in 0..f {
            cluster = cluster.fault(i, kinds[i % kinds.len()]);
        }
        let report = cluster.run();
        prop_assert!(report.all_correct_decided(), "termination failed");
        prop_assert!(report.agreement_holds(), "agreement failed");
        // The decision is binary, hence trivially within the input hull;
        // when correct nodes are unanimous, validity pins it exactly
        // (checked in the dedicated test below).
    }

    /// Validity: when every correct node proposes the same value, that
    /// value is decided — regardless of adversaries.
    #[test]
    fn validity_holds_under_unanimity(
        n in 4usize..11,
        seed in 0u64..10_000,
        value in proptest::bool::ANY,
        schedule in arb_schedule(),
        kind in arb_fault_kind(),
    ) {
        let v = Value::from_bool(value);
        let mut cluster = Cluster::new(n).unwrap();
        let f = cluster.config().f();
        cluster = cluster
            .seed(seed)
            .inputs(vec![v; n])
            .schedule(schedule)
            .faults(f, kind);
        let report = cluster.run();
        prop_assert!(report.all_correct_decided(), "termination failed");
        prop_assert_eq!(report.unanimous_output(), Some(v), "validity failed");
    }

    /// Determinism: the same cluster description produces bit-identical
    /// outcomes.
    #[test]
    fn runs_are_reproducible(
        n in 4usize..9,
        seed in 0u64..1_000,
        ones in 0usize..9,
    ) {
        let build = || {
            Cluster::new(n)
                .unwrap()
                .seed(seed)
                .split_inputs(ones.min(n))
                .fault(0, FaultKind::Seesaw)
        };
        let a = build().run();
        let b = build().run();
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.metrics.sent, b.metrics.sent);
        prop_assert_eq!(a.output_rounds, b.output_rounds);
    }
}

/// Exhaustive small-case check (not property-based): every (n, seed) pair
/// in a grid decides and agrees — a cheap regression net.
#[test]
fn small_grid_is_perfect() {
    for n in [4usize, 5, 6, 7] {
        for seed in 0..5u64 {
            let report = Cluster::new(n).unwrap().seed(seed).split_inputs(n / 2).run();
            assert!(report.all_correct_decided(), "n={n} seed={seed}");
            assert!(report.agreement_holds(), "n={n} seed={seed}");
        }
    }
}
