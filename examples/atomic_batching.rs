//! Atomic transaction batching à la HoneyBadgerBFT: every node proposes
//! a batch of transactions, the cluster runs an Asynchronous Common
//! Subset (n reliable broadcasts + n binary agreements — both Bracha
//! 1984 primitives), and all correct nodes commit the *same* union of
//! batches, even with a crashed proposer.
//!
//! ```text
//! cargo run --example atomic_batching
//! ```

use async_bft::adversary::Silent;
use async_bft::coin::CommonCoin;
use async_bft::consensus::acs::{AcsMessage, AcsOutput, AcsProcess};
use async_bft::sim::{UniformDelay, World, WorldConfig};
use async_bft::types::{Config, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let cfg = Config::new(n, 1)?;
    let crashed = NodeId::new(3);

    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 10, 11));
    for id in cfg.nodes() {
        if id == crashed {
            // This proposer is down from the start.
            world.add_faulty_process(Box::new(Silent::<AcsMessage, AcsOutput>::new(id)));
            continue;
        }
        // Each node proposes its mempool batch.
        let batch = format!("tx-{}a;tx-{}b;tx-{}c", id.index(), id.index(), id.index());
        let coins = (0..n).map(|i| CommonCoin::new(11, i as u64)).collect();
        world.add_process(Box::new(AcsProcess::new(cfg, id, batch.into_bytes(), coins)));
    }

    let report = world.run();
    assert!(report.all_correct_decided(), "ACS must complete");
    assert!(report.agreement_holds(), "all correct nodes commit the same set");

    let committed = report.output_of(NodeId::new(0)).expect("node 0 committed");
    println!("committed {} of {} proposed batches:", committed.len(), n);
    let mut txs = 0;
    for (proposer, batch) in &committed {
        let batch = String::from_utf8_lossy(batch);
        txs += batch.split(';').count();
        println!("  from {proposer}: {batch}");
    }
    println!("\ntotal transactions committed atomically: {txs}");
    println!("crashed proposer {crashed} excluded; liveness preserved ✓");
    println!("simulated latency: {} ticks", report.end_time.ticks());
    Ok(())
}
