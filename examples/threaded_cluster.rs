//! The same consensus code on real threads: the sans-io protocol state
//! machines are transport-agnostic, so the exact `BrachaProcess` that the
//! simulator drives also runs under the thread-per-node actor runtime —
//! with genuine OS-level nondeterminism instead of a seeded scheduler.
//!
//! ```text
//! cargo run --example threaded_cluster
//! ```

use async_bft::coin::LocalCoin;
use async_bft::consensus::{BrachaOptions, BrachaProcess};
use async_bft::runtime::Runtime;
use async_bft::types::{Config, Value};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 7;
    let cfg = Config::new(n, 2)?;

    println!("running {n} consensus actors on {n} OS threads…");
    let mut rt = Runtime::new(n).timeout(Duration::from_secs(30)).jitter_us(150); // widen the interleaving space

    for id in cfg.nodes() {
        // Inputs split 4 / 3 — the interesting, contended case.
        let input = if id.index() < 4 { Value::One } else { Value::Zero };
        rt.add_process(Box::new(BrachaProcess::new(
            cfg,
            id,
            input,
            LocalCoin::new(0xC0FFEE, id),
            BrachaOptions::default(),
        )));
    }

    let report = rt.run();
    assert!(!report.timed_out, "the cluster must decide well within the timeout");
    assert!(report.all_correct_decided(), "termination");
    assert!(report.agreement_holds(), "agreement");

    let decision = report.unanimous_output().expect("unanimous");
    println!("decision: {decision}");
    println!("wall-clock time to agreement: {:?}", report.elapsed);
    for (id, v) in &report.outputs {
        println!("  {id} decided {v}");
    }
    println!("\nsame protocol code as the simulator, real concurrency ✓");
    Ok(())
}
