//! Bracha's reliable broadcast — the Send/Echo/Ready primitive — first
//! with a correct sender, then with an *equivocating* Byzantine sender
//! that tells each half of the network a different story.
//!
//! ```text
//! cargo run --example reliable_broadcast
//! ```

use async_bft::adversary::RbcEquivocator;
use async_bft::rbc::RbcProcess;
use async_bft::sim::{StopReason, UniformDelay, World, WorldConfig};
use async_bft::types::{Config, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let cfg = Config::new(n, 1)?;
    let sender = NodeId::new(0);

    // --- A correct sender: everyone delivers its payload (validity) ---
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 15, 7));
    for id in cfg.nodes() {
        let payload = (id == sender).then(|| "block #42".to_string());
        world.add_process(Box::new(RbcProcess::new(cfg, id, sender, payload)));
    }
    let report = world.run();
    println!("correct sender:");
    println!("  everyone delivered: {}", report.all_correct_decided());
    println!("  delivered value   : {:?}", report.unanimous_output());
    println!("  messages          : {} (O(n²))\n", report.metrics.sent);
    assert_eq!(report.unanimous_output(), Some("block #42".to_string()));

    // --- An equivocating sender: "block A" to half, "block B" to the
    // rest. Agreement says no two correct nodes may deliver different
    // blocks; totality says delivery is all-or-none. ---
    println!("equivocating sender (\"block A\" vs \"block B\"):");
    let mut all = 0;
    let mut none = 0;
    for seed in 0..10 {
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 15, seed));
        world.add_faulty_process(Box::new(RbcEquivocator::new(
            cfg,
            sender,
            "block A".to_string(),
            "block B".to_string(),
        )));
        for id in cfg.nodes().skip(1) {
            world.add_process(Box::new(RbcProcess::<String>::new(cfg, id, sender, None)));
        }
        let report = world.run();
        assert!(report.agreement_holds(), "split delivery must be impossible");
        match report.stop {
            StopReason::Completed => {
                all += 1;
                println!(
                    "  seed {seed}: all delivered {:?}",
                    report.unanimous_output().expect("agreement")
                );
            }
            _ => {
                none += 1;
                println!("  seed {seed}: nobody delivered (all-or-none: none)");
            }
        }
    }
    println!("\noutcomes: {all} × all-delivered, {none} × none-delivered, 0 × split ✓");
    Ok(())
}
