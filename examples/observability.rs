//! Protocol-level tracing: run a small cluster with an observer
//! attached, stream every event as JSONL to stdout, and print the
//! aggregated metrics report.
//!
//! ```bash
//! cargo run --example observability
//! ```

use async_bft::obs::{JsonlSink, MetricsSink, Obs, Tee};
use async_bft::{Cluster, Schedule};

fn main() {
    // Tee the event stream: raw JSONL lines into a buffer (stdout at
    // the end), aggregated latency/message metrics alongside.
    let (obs, shared) = Obs::new(Tee(JsonlSink::new(Vec::new()), MetricsSink::new()));

    let report = Cluster::new(4)
        .expect("n > 0")
        .seed(7)
        .split_inputs(2)
        .schedule(Schedule::Uniform { min: 1, max: 10 })
        .observer(obs.clone())
        .run();
    drop(obs);

    let Tee(jsonl, mut metrics) = shared.try_into_inner().expect("all handles dropped");

    let lines = jsonl.lines();
    let trace = String::from_utf8(jsonl.into_inner()).expect("jsonl is utf-8");
    println!("--- first 10 of {lines} events ---");
    for line in trace.lines().take(10) {
        println!("{line}");
    }
    println!("--- aggregated metrics ---");
    println!("{}", metrics.to_json());
    println!("--- run report ---");
    println!("decided: {:?} in round {:?}", report.unanimous_output(), report.decision_round());
}
