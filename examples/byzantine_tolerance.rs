//! Byzantine tolerance under fire: seven nodes, two of which actively
//! lie, plus a content-aware adversarial scheduler — and the protocol
//! still cannot be broken.
//!
//! Also contrasts the 1984 local coin with the common-coin variant that
//! modern asynchronous BFT systems use.
//!
//! ```text
//! cargo run --example byzantine_tolerance
//! ```

use async_bft::types::Value;
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};

fn run_once(coin: CoinChoice, seed: u64) -> (Value, u64, u64) {
    let report = Cluster::new(7)
        .expect("7 nodes is a valid cluster")
        .seed(seed)
        // All five honest nodes propose 1; validity therefore *requires*
        // the decision to be 1, whatever the liars do.
        .inputs(vec![Value::One; 7])
        .coin(coin)
        // Node 0 flips every value it should send; node 1 see-saws
        // between 0 and 1 each round trying to stall termination.
        .fault(0, FaultKind::FlipValue)
        .fault(1, FaultKind::Seesaw)
        // The anti-coin scheduler: feeds each half of the cluster the
        // "wrong" value first, trying to keep quorums split.
        .schedule(Schedule::Split { fast: 1, slow: 8 })
        .run();

    let decision = report.unanimous_output().expect("agreement + termination");
    assert_eq!(decision, Value::One, "validity: liars cannot flip the outcome");
    (decision, report.decision_round().expect("decided"), report.metrics.sent)
}

fn main() {
    println!("n = 7, f = 2 (one value-flipping liar, one see-saw liar)");
    println!("schedule: value-aware anti-coin adversary\n");

    for (label, coin) in [
        ("local coin (Bracha 1984)", CoinChoice::Local),
        ("common coin (dealer model)", CoinChoice::Common),
    ] {
        println!("--- {label} ---");
        let mut total_rounds = 0;
        for seed in 0..5 {
            let (decision, rounds, msgs) = run_once(coin, seed);
            total_rounds += rounds;
            println!("seed {seed}: decided {decision} in round {rounds} ({msgs} msgs)");
        }
        println!("mean rounds: {:.1}\n", total_rounds as f64 / 5.0);
    }

    println!("both coins are safe; the common coin is also fast under attack ✓");
}
