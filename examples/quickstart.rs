//! Quickstart: run Bracha's asynchronous Byzantine consensus on a small
//! simulated cluster and inspect the outcome.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use async_bft::types::Value;
use async_bft::{Cluster, CoinChoice, Schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node cluster tolerates f = 1 Byzantine node (n ≥ 3f + 1).
    // Here everyone is honest but the *inputs disagree* — two nodes vote
    // 1, two vote 0 — and the network is asynchronous: every message is
    // delayed by an adversary-controlled amount.
    let report = Cluster::new(4)?
        .seed(2024)
        .split_inputs(2)
        .coin(CoinChoice::Local) // the 1984 protocol: private fair coins
        .schedule(Schedule::Uniform { min: 1, max: 20 })
        .run();

    let decision = report.unanimous_output().expect("all correct nodes agree");
    println!("decision           : {decision}");
    println!("decision round     : {}", report.decision_round().expect("decided"));
    println!("simulated latency  : {} ticks", report.decision_latency().expect("decided").ticks());
    println!("messages exchanged : {}", report.metrics.sent);
    println!("per-node decisions :");
    for id in &report.correct {
        println!("  {id}: {} (round {})", report.outputs[id], report.output_rounds[id]);
    }

    // The three textbook properties, checked explicitly:
    assert!(report.all_correct_decided(), "termination");
    assert!(report.agreement_holds(), "agreement");
    assert!(
        matches!(report.unanimous_output(), Some(Value::Zero) | Some(Value::One)),
        "validity: the decision is one of the proposed values"
    );
    println!("\nagreement, validity and termination all hold ✓");
    Ok(())
}
