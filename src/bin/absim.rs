//! `absim` — run a simulated asynchronous Byzantine consensus cluster
//! from the command line.
//!
//! ```text
//! absim [--n N] [--seed S] [--ones K] [--coin local|common]
//!       [--schedule fixed|uniform|split|partition|favor]
//!       [--fault KIND]... [--runs R] [--trace]
//!
//! KIND ∈ crash, mute, flip-value, random-value, always-flag, seesaw
//!        (each --fault corrupts the next lowest-indexed node)
//! ```
//!
//! Examples:
//!
//! ```text
//! absim --n 7 --ones 3 --fault flip-value --fault seesaw --runs 10
//! absim --n 10 --coin common --schedule split
//! ```

use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};

struct Options {
    n: usize,
    seed: u64,
    ones: Option<usize>,
    coin: CoinChoice,
    schedule: Schedule,
    faults: Vec<FaultKind>,
    runs: u64,
}

fn parse_fault(s: &str) -> Result<FaultKind, String> {
    Ok(match s {
        "crash" => FaultKind::Crash { after: 40 },
        "mute" => FaultKind::Mute,
        "flip-value" => FaultKind::FlipValue,
        "random-value" => FaultKind::RandomValue,
        "always-flag" => FaultKind::AlwaysFlag,
        "seesaw" => FaultKind::Seesaw,
        other => return Err(format!("unknown fault kind: {other}")),
    })
}

fn parse_schedule(s: &str) -> Result<Schedule, String> {
    Ok(match s {
        "fixed" => Schedule::Fixed(1),
        "uniform" => Schedule::Uniform { min: 1, max: 20 },
        "split" => Schedule::Split { fast: 1, slow: 8 },
        "partition" => Schedule::Partition { near: 1, far: 100, heal_at: 300 },
        "favor" => Schedule::FavorFaulty { favored: 2, fast: 1, slow: 15 },
        other => return Err(format!("unknown schedule: {other}")),
    })
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        n: 7,
        seed: 0,
        ones: None,
        coin: CoinChoice::Local,
        schedule: Schedule::Uniform { min: 1, max: 20 },
        faults: Vec::new(),
        runs: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--n" => opts.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--ones" => {
                opts.ones = Some(value("--ones")?.parse().map_err(|e| format!("--ones: {e}"))?)
            }
            "--coin" => {
                opts.coin = match value("--coin")?.as_str() {
                    "local" => CoinChoice::Local,
                    "common" => CoinChoice::Common,
                    other => return Err(format!("unknown coin: {other}")),
                }
            }
            "--schedule" => opts.schedule = parse_schedule(&value("--schedule")?)?,
            "--fault" => opts.faults.push(parse_fault(&value("--fault")?)?),
            "--runs" => opts.runs = value("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--help" | "-h" => {
                println!(
                    "usage: absim [--n N] [--seed S] [--ones K] [--coin local|common] \
                     [--schedule fixed|uniform|split|partition|favor] [--fault KIND]... \
                     [--runs R]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let f_max = (opts.n.saturating_sub(1)) / 3;
    if opts.faults.len() > f_max {
        eprintln!(
            "error: {} faults exceed the resilience bound f = {f_max} for n = {}",
            opts.faults.len(),
            opts.n
        );
        std::process::exit(2);
    }

    println!(
        "n = {}, f-bound = {f_max}, actual faults = {}, coin = {:?}, schedule = {:?}",
        opts.n,
        opts.faults.len(),
        opts.coin,
        opts.schedule
    );

    let mut decided = 0u64;
    let mut agreed = 0u64;
    let mut total_rounds = 0u64;
    let mut total_msgs = 0u64;
    for run in 0..opts.runs {
        let seed = opts.seed + run;
        let mut cluster = match Cluster::new(opts.n) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        cluster = cluster
            .seed(seed)
            .split_inputs(opts.ones.unwrap_or(opts.n / 2))
            .coin(opts.coin)
            .schedule(opts.schedule);
        for (i, &kind) in opts.faults.iter().enumerate() {
            cluster = cluster.fault(i, kind);
        }
        let report = cluster.run();
        let ok = report.all_correct_decided();
        if ok {
            decided += 1;
            total_rounds += report.decision_round().unwrap_or(0);
        }
        if report.agreement_holds() {
            agreed += 1;
        }
        total_msgs += report.metrics.sent;
        println!(
            "run {run:>3} (seed {seed}): decision = {:?}, round = {:?}, msgs = {}, latency = {:?}",
            report.unanimous_output(),
            report.decision_round(),
            report.metrics.sent,
            report.decision_latency().map(|t| t.ticks()),
        );
    }

    println!(
        "\nsummary: {}/{} terminated, {}/{} agreed, mean rounds = {:.2}, mean msgs = {:.0}",
        decided,
        opts.runs,
        agreed,
        opts.runs,
        total_rounds as f64 / decided.max(1) as f64,
        total_msgs as f64 / opts.runs as f64,
    );
}
