//! `absim` — run a simulated asynchronous Byzantine consensus cluster
//! from the command line.
//!
//! ```text
//! absim [--n N] [--seed S] [--ones K] [--coin local|common]
//!       [--schedule fixed|uniform|split|partition|favor]
//!       [--fault KIND]... [--runs R]
//!       [--epochs E] [--batch B] [--pipeline D] [--rbc bracha|coded]
//!       [--kv-workload] [--checkpoint-interval C] [--restart-node]
//!       [--trace-out FILE] [--metrics-out FILE]
//!
//! KIND ∈ crash, mute, flip-value, random-value, always-flag, seesaw
//!        (each --fault corrupts the next lowest-indexed node)
//! ```
//!
//! `--trace-out FILE` streams every observability event (including the
//! causal-trace spans of `--epochs` ordering mode) as JSONL, ready for
//! the `abtrace` analyzer. `--metrics-out FILE` writes a Prometheus
//! text-format snapshot of the aggregated metrics at exit.
//!
//! With `--epochs E` (E > 0) the binary switches from single-shot binary
//! consensus to the **atomic-broadcast** engine (`bft-order`): E epochs
//! of batched ACS with a pipeline of depth D (`--pipeline`), batches of
//! up to B payloads (`--batch`), over the uniform 1–20 tick schedule.
//! `--fault`/`--ones`/`--schedule` apply to the consensus mode only.
//!
//! With `--kv-workload` the ordered log feeds the **replicated key-value
//! state machine** (`bft-smr`): nodes apply a seeded put/cas/del
//! workload, RBC-agree on checkpoint hashes every
//! `--checkpoint-interval` epochs and truncate the log below the
//! certificate. `--restart-node` crashes the highest-indexed node early
//! and restarts it with empty state, exercising erasure-coded peer state
//! transfer.
//!
//! Examples:
//!
//! ```text
//! absim --n 7 --ones 3 --fault flip-value --fault seesaw --runs 10
//! absim --n 10 --coin common --schedule split
//! absim --n 4 --epochs 8 --batch 4 --pipeline 3
//! absim --kv-workload --checkpoint-interval 4 --restart-node
//! ```

use async_bft::obs::{JsonlSink, MetricsSink, Obs, SharedSink, Tee};
use async_bft::rbc::RbcKind;
use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
use std::io::Write;

struct Options {
    n: usize,
    seed: u64,
    ones: Option<usize>,
    coin: CoinChoice,
    schedule: Schedule,
    faults: Vec<FaultKind>,
    runs: u64,
    epochs: u64,
    batch: usize,
    pipeline: usize,
    rbc: RbcKind,
    kv_workload: bool,
    checkpoint_interval: u64,
    restart_node: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

/// The per-run export sink: metrics always, a JSONL event stream only
/// when `--trace-out` is given.
type ExportSink = Tee<MetricsSink, Option<JsonlSink<Box<dyn Write + Send>>>>;

/// Builds the observer for one run. Returns a disabled observer when
/// neither export flag is set, so the default path stays unobserved.
/// The trace file is truncated by the first run and appended by later
/// ones (single-run exports are what `abtrace` expects).
fn export_obs(opts: &Options, run: u64) -> (Obs, Option<SharedSink<ExportSink>>) {
    if opts.trace_out.is_none() && opts.metrics_out.is_none() {
        return (Obs::disabled(), None);
    }
    let jsonl = opts.trace_out.as_ref().map(|path| {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(run == 0)
            .append(run != 0)
            .open(path);
        match file {
            Ok(f) => {
                let out: Box<dyn Write + Send> = Box::new(std::io::BufWriter::new(f));
                JsonlSink::new(out)
            }
            Err(e) => {
                eprintln!("error: --trace-out {path}: {e}");
                std::process::exit(2);
            }
        }
    });
    let (obs, sink) = Obs::new(Tee(MetricsSink::new(), jsonl));
    (obs, Some(sink))
}

/// Folds one run's metrics into the exit total and flushes its JSONL
/// stream.
fn fold_export(total: &mut MetricsSink, sink: &Option<SharedSink<ExportSink>>) {
    if let Some(sink) = sink {
        let mut guard = sink.lock();
        total.merge(&guard.0);
        if let Some(jsonl) = guard.1.as_mut() {
            jsonl.flush();
        }
    }
}

/// Writes the Prometheus snapshot at exit when `--metrics-out` is set.
fn write_metrics_out(opts: &Options, total: &mut MetricsSink) {
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = std::fs::write(path, total.render_prometheus()) {
            eprintln!("error: --metrics-out {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_fault(s: &str) -> Result<FaultKind, String> {
    Ok(match s {
        "crash" => FaultKind::Crash { after: 40 },
        "mute" => FaultKind::Mute,
        "flip-value" => FaultKind::FlipValue,
        "random-value" => FaultKind::RandomValue,
        "always-flag" => FaultKind::AlwaysFlag,
        "seesaw" => FaultKind::Seesaw,
        other => return Err(format!("unknown fault kind: {other}")),
    })
}

fn parse_schedule(s: &str) -> Result<Schedule, String> {
    Ok(match s {
        "fixed" => Schedule::Fixed(1),
        "uniform" => Schedule::Uniform { min: 1, max: 20 },
        "split" => Schedule::Split { fast: 1, slow: 8 },
        "partition" => Schedule::Partition { near: 1, far: 100, heal_at: 300 },
        "favor" => Schedule::FavorFaulty { favored: 2, fast: 1, slow: 15 },
        other => return Err(format!("unknown schedule: {other}")),
    })
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        n: 7,
        seed: 0,
        ones: None,
        coin: CoinChoice::Local,
        schedule: Schedule::Uniform { min: 1, max: 20 },
        faults: Vec::new(),
        runs: 1,
        epochs: 0,
        batch: 4,
        pipeline: 2,
        rbc: RbcKind::Bracha,
        kv_workload: false,
        checkpoint_interval: 4,
        restart_node: false,
        trace_out: None,
        metrics_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--n" => opts.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--ones" => {
                opts.ones = Some(value("--ones")?.parse().map_err(|e| format!("--ones: {e}"))?)
            }
            "--coin" => {
                opts.coin = match value("--coin")?.as_str() {
                    "local" => CoinChoice::Local,
                    "common" => CoinChoice::Common,
                    other => return Err(format!("unknown coin: {other}")),
                }
            }
            "--schedule" => opts.schedule = parse_schedule(&value("--schedule")?)?,
            "--fault" => opts.faults.push(parse_fault(&value("--fault")?)?),
            "--runs" => opts.runs = value("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--epochs" => {
                opts.epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--batch" => {
                opts.batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?
            }
            "--pipeline" => {
                opts.pipeline =
                    value("--pipeline")?.parse().map_err(|e| format!("--pipeline: {e}"))?
            }
            "--rbc" => {
                let v = value("--rbc")?;
                opts.rbc = RbcKind::parse(&v)
                    .ok_or_else(|| format!("--rbc: expected bracha or coded, got {v}"))?;
            }
            "--kv-workload" => opts.kv_workload = true,
            "--checkpoint-interval" => {
                opts.checkpoint_interval = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-interval: {e}"))?
            }
            "--restart-node" => opts.restart_node = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--help" | "-h" => {
                println!(
                    "usage: absim [--n N] [--seed S] [--ones K] [--coin local|common] \
                     [--schedule fixed|uniform|split|partition|favor] [--fault KIND]... \
                     [--runs R] [--epochs E] [--batch B] [--pipeline D] \
                     [--rbc bracha|coded] [--kv-workload] [--checkpoint-interval C] \
                     [--restart-node] [--trace-out FILE] [--metrics-out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

/// The atomic-broadcast mode: `--epochs E` epochs of batched ACS over
/// the deterministic simulator, reporting ordered-log throughput.
fn run_ordering(opts: &Options) {
    use async_bft::coin::{CommonCoin, LocalCoin};
    use async_bft::order::{OrderOptions, OrderProcess};
    use async_bft::sim::{StopReason, UniformDelay, World, WorldConfig};
    use async_bft::types::Config;

    if !opts.faults.is_empty() || opts.ones.is_some() {
        eprintln!("error: --fault/--ones apply to consensus mode, not --epochs ordering mode");
        std::process::exit(2);
    }
    let f_max = (opts.n.saturating_sub(1)) / 3;
    let cfg = match Config::new(opts.n, f_max) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let order = OrderOptions {
        batch_max: opts.batch.max(1),
        pipeline_depth: opts.pipeline.max(1),
        epochs: opts.epochs,
        rbc: opts.rbc,
    };
    println!(
        "ordering mode: n = {}, f = {f_max}, epochs = {}, batch = {}, pipeline depth = {}, \
         rbc = {}",
        opts.n, order.epochs, order.batch_max, order.pipeline_depth, order.rbc
    );

    let mut completed = 0u64;
    let mut agreed = 0u64;
    let mut total = MetricsSink::new();
    for run in 0..opts.runs {
        let seed = opts.seed + run;
        let (obs, export) = export_obs(opts, run);
        let mut world = World::new(WorldConfig::new(opts.n), UniformDelay::new(1, 20, seed));
        world.set_observer(obs.clone());
        for id in cfg.nodes() {
            let workload: Vec<Vec<u8>> = (0..order.epochs * order.batch_max as u64)
                .map(|i| format!("tx-{}-{i}", id.index()).into_bytes())
                .collect();
            let common = matches!(opts.coin, CoinChoice::Common);
            world.add_process(Box::new(
                OrderProcess::new(
                    cfg,
                    id,
                    order,
                    workload,
                    move |inst| -> Box<dyn async_bft::coin::CoinScheme + Send> {
                        if common {
                            Box::new(CommonCoin::new(seed, inst))
                        } else {
                            Box::new(LocalCoin::for_instance(seed, id, inst))
                        }
                    },
                )
                .with_obs(obs.clone()),
            ));
        }
        let report = world.run();
        fold_export(&mut total, &export);
        let txs = report.unanimous_output().map_or(0, |log| log.len() as u64);
        let ticks = report.end_time.ticks().max(1);
        if report.stop == StopReason::Completed && report.all_correct_decided() {
            completed += 1;
        }
        if report.agreement_holds() {
            agreed += 1;
        }
        println!(
            "run {run:>3} (seed {seed}): txs ordered = {txs}, ticks = {ticks}, \
             tx/kilotick = {:.2}, msgs = {}",
            txs as f64 * 1000.0 / ticks as f64,
            report.metrics.sent,
        );
    }
    write_metrics_out(opts, &mut total);
    println!("\nsummary: {}/{} completed, {}/{} agreed", completed, opts.runs, agreed, opts.runs);
    if completed < opts.runs || agreed < opts.runs {
        std::process::exit(1);
    }
}

/// The replicated-service mode: `--kv-workload` runs the bft-smr state
/// machine over the ordering engine, with RBC-agreed checkpoints every
/// `--checkpoint-interval` epochs; `--restart-node` crashes the
/// highest-indexed node mid-run and restarts it empty, forcing recovery
/// through peer state transfer.
fn run_smr(opts: &Options) {
    use async_bft::coin::{CommonCoin, LocalCoin};
    use async_bft::order::OrderOptions;
    use async_bft::sim::{SimTime, StopReason, UniformDelay, World, WorldConfig};
    use async_bft::smr::{seeded_workload, SmrOptions, SmrProcess};
    use async_bft::types::{Config, NodeId};

    if !opts.faults.is_empty() || opts.ones.is_some() {
        eprintln!("error: --fault/--ones apply to consensus mode, not --kv-workload mode");
        std::process::exit(2);
    }
    let f_max = (opts.n.saturating_sub(1)) / 3;
    let cfg = match Config::new(opts.n, f_max) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let epochs = if opts.epochs > 0 { opts.epochs } else { 8 };
    let smr = SmrOptions {
        order: OrderOptions {
            batch_max: opts.batch.max(1),
            pipeline_depth: opts.pipeline.max(1),
            epochs,
            rbc: opts.rbc,
        },
        checkpoint_interval: opts.checkpoint_interval.max(1),
    };
    println!(
        "state-machine mode: n = {}, f = {f_max}, epochs = {epochs}, checkpoint interval = {}, \
         rbc = {}, restart = {}",
        opts.n,
        smr.checkpoint_interval,
        smr.order.rbc,
        if opts.restart_node { "yes" } else { "no" },
    );

    // The victim crashes early (before it can output) and restarts much
    // later with empty state, so recovery must go through a certified
    // checkpoint fetched from the peers.
    let crash_tick = 120;
    let restart_tick = 2500;
    let mut completed = 0u64;
    let mut agreed = 0u64;
    let mut total = MetricsSink::new();
    for run in 0..opts.runs {
        let seed = opts.seed + run;
        let (obs, export) = export_obs(opts, run);
        let mut world = World::new(WorldConfig::new(opts.n), UniformDelay::new(1, 20, seed));
        world.set_observer(obs.clone());
        let common = matches!(opts.coin, CoinChoice::Common);
        let count = (epochs * smr.order.batch_max as u64) as usize;
        let make = move |id: NodeId, obs: Obs| {
            SmrProcess::new(
                cfg,
                id,
                smr,
                seeded_workload(seed, id, count),
                move |inst| -> Box<dyn async_bft::coin::CoinScheme + Send> {
                    if common {
                        Box::new(CommonCoin::new(seed, inst))
                    } else {
                        Box::new(LocalCoin::for_instance(seed, id, inst))
                    }
                },
            )
            .with_obs(obs)
        };
        for id in cfg.nodes() {
            world.add_process(Box::new(make(id, obs.clone())));
        }
        if opts.restart_node {
            let victim = NodeId::new(opts.n - 1);
            world.schedule_crash(victim, SimTime::from_ticks(crash_tick));
            let obs_replacement = obs.clone();
            world.schedule_restart(
                victim,
                SimTime::from_ticks(restart_tick),
                Box::new(move || Box::new(make(victim, obs_replacement).recovering(true))),
            );
        }
        let report = world.run();
        fold_export(&mut total, &export);
        let ticks = report.end_time.ticks().max(1);
        if report.stop == StopReason::Completed && report.all_correct_decided() {
            completed += 1;
        }
        if report.agreement_holds() {
            agreed += 1;
        }
        match report.unanimous_output() {
            Some(out) => println!(
                "run {run:>3} (seed {seed}): state hash = {:016x}, epochs = {}, keys = {}, \
                 ticks = {ticks}, msgs = {}",
                out.state_hash, out.epochs, out.keys, report.metrics.sent,
            ),
            None => println!(
                "run {run:>3} (seed {seed}): NO unanimous state (stop = {:?}), ticks = {ticks}",
                report.stop,
            ),
        }
    }
    write_metrics_out(opts, &mut total);
    println!("\nsummary: {}/{} completed, {}/{} agreed", completed, opts.runs, agreed, opts.runs);
    if completed < opts.runs || agreed < opts.runs {
        std::process::exit(1);
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if opts.kv_workload {
        run_smr(&opts);
        return;
    }
    if opts.epochs > 0 {
        run_ordering(&opts);
        return;
    }

    let f_max = (opts.n.saturating_sub(1)) / 3;
    if opts.faults.len() > f_max {
        eprintln!(
            "error: {} faults exceed the resilience bound f = {f_max} for n = {}",
            opts.faults.len(),
            opts.n
        );
        std::process::exit(2);
    }

    println!(
        "n = {}, f-bound = {f_max}, actual faults = {}, coin = {:?}, schedule = {:?}",
        opts.n,
        opts.faults.len(),
        opts.coin,
        opts.schedule
    );

    let mut decided = 0u64;
    let mut agreed = 0u64;
    let mut total_rounds = 0u64;
    let mut total_msgs = 0u64;
    let mut total = MetricsSink::new();
    for run in 0..opts.runs {
        let seed = opts.seed + run;
        let (obs, export) = export_obs(&opts, run);
        let mut cluster = match Cluster::new(opts.n) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        cluster = cluster
            .seed(seed)
            .split_inputs(opts.ones.unwrap_or(opts.n / 2))
            .coin(opts.coin)
            .schedule(opts.schedule)
            .observer(obs);
        for (i, &kind) in opts.faults.iter().enumerate() {
            cluster = cluster.fault(i, kind);
        }
        let report = cluster.run();
        fold_export(&mut total, &export);
        let ok = report.all_correct_decided();
        if ok {
            decided += 1;
            total_rounds += report.decision_round().unwrap_or(0);
        }
        if report.agreement_holds() {
            agreed += 1;
        }
        total_msgs += report.metrics.sent;
        println!(
            "run {run:>3} (seed {seed}): decision = {:?}, round = {:?}, msgs = {}, latency = {:?}",
            report.unanimous_output(),
            report.decision_round(),
            report.metrics.sent,
            report.decision_latency().map(|t| t.ticks()),
        );
    }

    write_metrics_out(&opts, &mut total);
    println!(
        "\nsummary: {}/{} terminated, {}/{} agreed, mean rounds = {:.2}, mean msgs = {:.0}",
        decided,
        opts.runs,
        agreed,
        opts.runs,
        total_rounds as f64 / decided.max(1) as f64,
        total_msgs as f64 / opts.runs as f64,
    );
}
