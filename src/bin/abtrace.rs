//! `abtrace` — reconstruct causal trace trees from a JSONL event
//! export and print a latency-attribution report.
//!
//! ```text
//! abtrace [FILE] [--bench BENCH_JSON] [--json] [--canonical]
//! ```
//!
//! Reads the JSONL stream written by `absim --trace-out` / `abnet
//! --trace-out` (or stdin when no FILE is given), reassembles every
//! `span_start`/`span_end` pair into per-transaction trace trees, and
//! prints:
//!
//! * per-phase latency (count, p50, p99, max),
//! * the critical-path breakdown of submit → commit latency (which
//!   phase the proposer was actually waiting on, summing exactly to the
//!   measured end-to-end latency),
//! * the per-instance ABA round-count distribution (the O(1) expected
//!   rounds claim, measured).
//!
//! `--json` prints the same analysis as the deterministic `"tracing"`
//! JSON object instead of the human-readable table. `--canonical`
//! prints one sorted line per span (byte-identical across same-seed
//! simulator runs — the determinism check). `--bench FILE` additionally
//! merges the `"tracing"` object into an existing benchmark report
//! (e.g. `results/BENCH_bracha.json`), replacing any previous section.
//!
//! Examples:
//!
//! ```text
//! absim --n 4 --epochs 4 --trace-out /tmp/trace.jsonl
//! abtrace /tmp/trace.jsonl
//! abtrace /tmp/trace.jsonl --bench results/BENCH_bracha.json
//! ```

use async_bft::obs::json::JsonValue;
use async_bft::obs::{Event, TraceAssembler, TracePhase};
use async_bft::types::NodeId;
use std::io::{BufRead, Read};

struct Options {
    input: Option<String>,
    bench: Option<String>,
    json: bool,
    canonical: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { input: None, bench: None, json: false, canonical: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => {
                opts.bench = Some(args.next().ok_or("--bench requires a value")?);
            }
            "--json" => opts.json = true,
            "--canonical" => opts.canonical = true,
            "--help" | "-h" => {
                println!("usage: abtrace [FILE] [--bench BENCH_JSON] [--json] [--canonical]");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown argument: {flag}")),
            file if opts.input.is_none() => opts.input = Some(file.to_string()),
            extra => return Err(format!("unexpected extra input: {extra}")),
        }
    }
    Ok(opts)
}

/// Statistics of one ingestion pass.
#[derive(Default)]
struct Ingest {
    lines: u64,
    span_events: u64,
    skipped: u64,
}

/// Reconstructs a span event from one parsed JSONL object; lines that
/// are valid JSON but not span events return `None` (they are the
/// metrics/protocol events sharing the export).
fn span_event(obj: &JsonValue) -> Option<(u64, NodeId, Event)> {
    let at = obj.get("t")?.as_u64()?;
    let node = NodeId::new(obj.get("node")?.as_u64()? as usize);
    let trace = obj.get("trace")?.as_u64()?;
    let span = obj.get("span")?.as_u64()?;
    match obj.get("ev")?.as_str()? {
        "span_start" => {
            let parent = obj.get("parent")?.as_u64()?;
            let round = obj.get("round").and_then(JsonValue::as_u64).unwrap_or(0);
            let phase = TracePhase::from_parts(obj.get("phase")?.as_str()?, round)?;
            Some((at, node, Event::SpanStart { trace, span, parent, phase }))
        }
        "span_end" => Some((at, node, Event::SpanEnd { trace, span })),
        _ => None,
    }
}

fn ingest(reader: impl BufRead, asm: &mut TraceAssembler) -> Result<Ingest, String> {
    let mut stats = Ingest::default();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        stats.lines += 1;
        let Ok(obj) = JsonValue::parse(&line) else {
            stats.skipped += 1;
            continue;
        };
        if let Some((at, node, event)) = span_event(&obj) {
            asm.on_event(at, node, &event);
            stats.span_events += 1;
        }
    }
    Ok(stats)
}

/// Replaces (or appends) the `"tracing"` section of a benchmark report.
fn merge_bench(path: &str, tracing: JsonValue) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let report = JsonValue::parse(&text).map_err(|e| format!("{path}: {e:?}"))?;
    let JsonValue::Obj(mut fields) = report else {
        return Err(format!("{path}: expected a JSON object at top level"));
    };
    match fields.iter_mut().find(|(key, _)| key == "tracing") {
        Some((_, slot)) => *slot = tracing,
        None => fields.push(("tracing".to_string(), tracing)),
    }
    let merged = JsonValue::Obj(fields).to_string();
    std::fs::write(path, merged + "\n").map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let mut asm = TraceAssembler::new();
    let stats = match &opts.input {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            ingest(std::io::BufReader::new(file), &mut asm)?
        }
        None => {
            let mut text = String::new();
            std::io::stdin().read_to_string(&mut text).map_err(|e| format!("stdin: {e}"))?;
            ingest(std::io::Cursor::new(text), &mut asm)?
        }
    };

    if stats.span_events == 0 {
        return Err(format!(
            "no span events in {} input lines — was the export produced with --trace-out \
             in --epochs ordering mode?",
            stats.lines
        ));
    }
    eprintln!(
        "read {} lines: {} span events, {} unparseable",
        stats.lines, stats.span_events, stats.skipped
    );

    if opts.canonical {
        for line in asm.canonical_lines() {
            println!("{line}");
        }
    } else if opts.json {
        println!("{}", asm.to_json());
    } else {
        print!("{}", asm.render_report());
    }

    if let Some(bench) = &opts.bench {
        merge_bench(bench, asm.to_json())?;
        eprintln!("merged \"tracing\" section into {bench}");
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
