//! `abnet` — run an asynchronous Byzantine consensus cluster over real
//! loopback TCP sockets from the command line.
//!
//! The sibling of `absim`: same protocol processes, but instead of the
//! deterministic simulator they run on the `bft-net` transport — framed
//! wire codec, authenticated handshake, full-mesh peer manager with
//! reconnect/backoff, and optional link-level chaos.
//!
//! ```text
//! abnet [--n N] [--seed S] [--ones K] [--fault KIND]...
//!       [--drop PER_MILLE] [--dup PER_MILLE] [--delay PER_MILLE]
//!       [--max-delay-ms MS] [--timeout-secs T] [--runs R]
//!       [--epochs E] [--batch B] [--pipeline D] [--rbc bracha|coded]
//!       [--clients C] [--rate TX_PER_S] [--load-ms MS] [--tx-bytes B]
//!       [--trace-out FILE] [--metrics-out FILE]
//!
//! KIND ∈ crash, mute, flip-value, random-value, always-flag, seesaw
//!        (each --fault corrupts the next lowest-indexed node)
//! ```
//!
//! `--trace-out FILE` streams every observability event (including the
//! causal-trace spans of `--epochs` ordering mode) as JSONL for the
//! `abtrace` analyzer. `--metrics-out FILE` writes a Prometheus
//! text-format snapshot of the aggregated metrics at exit.
//!
//! With `--epochs E` (E > 0) the binary runs the **atomic-broadcast**
//! engine (`bft-order`) over TCP instead of single-shot consensus: E
//! epochs of batched ACS, pipeline depth D (`--pipeline`), batches of
//! up to B payloads (`--batch`). Chaos flags compose with it;
//! `--fault`/`--ones` apply to the consensus mode only.
//!
//! With `--kv-workload` the binary runs the **replicated KV state
//! machine** (`bft-smr`) over TCP: every node orders a seeded operation
//! stream, applies it deterministically, and certifies an RBC-agreed
//! checkpoint every `--checkpoint-interval` epochs (truncating the
//! ordered log below it). `--restart-node` additionally crashes the
//! highest-indexed node early in the run and restarts it once the
//! survivors are done, forcing recovery through erasure-coded peer
//! state transfer from the latest certified checkpoint.
//!
//! With `--clients C` (C > 0) the binary runs the **client gateway**
//! scenario: a reactor-driver cluster of gateway-wrapped ordering
//! processes, each with a real client-facing listener, driven by the
//! open-loop load generator (C simulated clients at `--rate`
//! submissions/s aggregate for `--load-ms`). The final line is a JSON
//! summary (`committed`, `nacked`, latency percentiles, `anomalies`)
//! for the CI smoke job; the exit code is nonzero when nothing
//! committed or an anomaly surfaced.
//!
//! Examples:
//!
//! ```text
//! abnet --n 4 --fault flip-value
//! abnet --n 7 --ones 3 --drop 100 --dup 50 --runs 5
//! abnet --n 4 --epochs 5 --batch 4 --pipeline 3 --drop 50
//! abnet --n 4 --kv-workload --checkpoint-interval 4 --restart-node
//! abnet --n 16 --clients 200 --rate 2000 --load-ms 2000
//! ```

use async_bft::adversary::{make_bracha_adversary, FaultKind};
use async_bft::coin::LocalCoin;
use async_bft::consensus::{BrachaOptions, BrachaProcess, Wire};
use async_bft::net::{ChaosConfig, NetDriver, NetRuntime};
use async_bft::obs::{JsonlSink, MetricsSink, Obs, SharedSink, Tee};
use async_bft::rbc::RbcKind;
use async_bft::types::{Config, Value};
use std::io::Write;
use std::time::Duration;

struct Options {
    n: usize,
    seed: u64,
    ones: Option<usize>,
    faults: Vec<FaultKind>,
    drop_per_mille: u16,
    dup_per_mille: u16,
    delay_per_mille: u16,
    max_delay_ms: u64,
    timeout_secs: u64,
    runs: u64,
    epochs: u64,
    batch: usize,
    pipeline: usize,
    rbc: RbcKind,
    kv_workload: bool,
    checkpoint_interval: u64,
    restart_node: bool,
    driver: NetDriver,
    clients: u64,
    rate: u64,
    load_ms: u64,
    tx_bytes: usize,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

/// The per-run sink: metrics always (they feed the per-run summary
/// line), a JSONL event stream only when `--trace-out` is given.
type ExportSink = Tee<MetricsSink, Option<JsonlSink<Box<dyn Write + Send>>>>;

/// Builds the observer for one run. The trace file is truncated by the
/// first run and appended by later ones (single-run exports are what
/// `abtrace` expects).
fn export_obs(opts: &Options, run: u64) -> (Obs, SharedSink<ExportSink>) {
    let jsonl = opts.trace_out.as_ref().map(|path| {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(run == 0)
            .append(run != 0)
            .open(path);
        match file {
            Ok(f) => {
                let out: Box<dyn Write + Send> = Box::new(std::io::BufWriter::new(f));
                JsonlSink::new(out)
            }
            Err(e) => {
                eprintln!("error: --trace-out {path}: {e}");
                std::process::exit(2);
            }
        }
    });
    Obs::new(Tee(MetricsSink::new(), jsonl))
}

/// Writes the Prometheus snapshot at exit when `--metrics-out` is set.
fn write_metrics_out(opts: &Options, total: &mut MetricsSink) {
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = std::fs::write(path, total.render_prometheus()) {
            eprintln!("error: --metrics-out {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_fault(s: &str) -> Result<FaultKind, String> {
    Ok(match s {
        "crash" => FaultKind::Crash { after: 40 },
        "mute" => FaultKind::Mute,
        "flip-value" => FaultKind::FlipValue,
        "random-value" => FaultKind::RandomValue,
        "always-flag" => FaultKind::AlwaysFlag,
        "seesaw" => FaultKind::Seesaw,
        other => return Err(format!("unknown fault kind: {other}")),
    })
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        n: 4,
        seed: 0,
        ones: None,
        faults: Vec::new(),
        drop_per_mille: 0,
        dup_per_mille: 0,
        delay_per_mille: 0,
        max_delay_ms: 2,
        timeout_secs: 60,
        runs: 1,
        epochs: 0,
        batch: 4,
        pipeline: 2,
        rbc: RbcKind::Bracha,
        kv_workload: false,
        checkpoint_interval: 4,
        restart_node: false,
        driver: NetDriver::default(),
        clients: 0,
        rate: 2000,
        load_ms: 2000,
        tx_bytes: 32,
        trace_out: None,
        metrics_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--n" => opts.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--ones" => {
                opts.ones = Some(value("--ones")?.parse().map_err(|e| format!("--ones: {e}"))?)
            }
            "--fault" => opts.faults.push(parse_fault(&value("--fault")?)?),
            "--drop" => {
                opts.drop_per_mille =
                    value("--drop")?.parse().map_err(|e| format!("--drop: {e}"))?
            }
            "--dup" => {
                opts.dup_per_mille = value("--dup")?.parse().map_err(|e| format!("--dup: {e}"))?
            }
            "--delay" => {
                opts.delay_per_mille =
                    value("--delay")?.parse().map_err(|e| format!("--delay: {e}"))?
            }
            "--max-delay-ms" => {
                opts.max_delay_ms =
                    value("--max-delay-ms")?.parse().map_err(|e| format!("--max-delay-ms: {e}"))?
            }
            "--timeout-secs" => {
                opts.timeout_secs =
                    value("--timeout-secs")?.parse().map_err(|e| format!("--timeout-secs: {e}"))?
            }
            "--runs" => opts.runs = value("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--epochs" => {
                opts.epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--batch" => {
                opts.batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?
            }
            "--pipeline" => {
                opts.pipeline =
                    value("--pipeline")?.parse().map_err(|e| format!("--pipeline: {e}"))?
            }
            "--rbc" => {
                let v = value("--rbc")?;
                opts.rbc = RbcKind::parse(&v)
                    .ok_or_else(|| format!("--rbc: expected bracha or coded, got {v}"))?;
            }
            "--kv-workload" => opts.kv_workload = true,
            "--checkpoint-interval" => {
                opts.checkpoint_interval = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-interval: {e}"))?
            }
            "--restart-node" => opts.restart_node = true,
            "--driver" => {
                let v = value("--driver")?;
                opts.driver = match v.as_str() {
                    "threads" => NetDriver::Threads,
                    "reactor" => NetDriver::Reactor,
                    other => {
                        return Err(format!("--driver: expected threads or reactor, got {other}"))
                    }
                };
            }
            "--clients" => {
                opts.clients = value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--rate" => opts.rate = value("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--load-ms" => {
                opts.load_ms = value("--load-ms")?.parse().map_err(|e| format!("--load-ms: {e}"))?
            }
            "--tx-bytes" => {
                opts.tx_bytes =
                    value("--tx-bytes")?.parse().map_err(|e| format!("--tx-bytes: {e}"))?
            }
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--help" | "-h" => {
                println!(
                    "usage: abnet [--n N] [--seed S] [--ones K] [--fault KIND]... \
                     [--drop PER_MILLE] [--dup PER_MILLE] [--delay PER_MILLE] \
                     [--max-delay-ms MS] [--timeout-secs T] [--runs R] \
                     [--epochs E] [--batch B] [--pipeline D] [--rbc bracha|coded] \
                     [--kv-workload] [--checkpoint-interval C] [--restart-node] \
                     [--driver threads|reactor] [--clients C] [--rate TX_PER_S] [--load-ms MS] [--tx-bytes B] \
                     [--trace-out FILE] [--metrics-out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

/// The client-gateway mode: `--clients C` simulated clients submit
/// through real gateway sockets into a reactor cluster of
/// gateway-wrapped ordering processes; prints a machine-readable JSON
/// summary line for the CI smoke job.
fn run_gateway(opts: &Options) {
    use async_bft::net::LoadGenConfig;
    use async_bft::order::OrderOptions;
    use async_bft::{run_gateway_load, GatewayLoadOptions};

    if !opts.faults.is_empty() || opts.ones.is_some() || opts.kv_workload {
        eprintln!("error: --clients gateway mode composes only with ordering flags");
        std::process::exit(2);
    }
    let epochs = if opts.epochs > 0 { opts.epochs } else { 24 };
    let gl = GatewayLoadOptions {
        n: opts.n,
        seed: opts.seed,
        order: OrderOptions {
            batch_max: opts.batch.max(1),
            pipeline_depth: opts.pipeline.max(1),
            epochs,
            rbc: opts.rbc,
        },
        load: LoadGenConfig {
            clients: opts.clients,
            rate_tx_per_s: opts.rate.max(1),
            tx_bytes: opts.tx_bytes,
            duration_ms: opts.load_ms,
            ..LoadGenConfig::default()
        },
        timeout: Duration::from_secs(opts.timeout_secs),
    };
    println!(
        "gateway mode: n = {}, clients = {}, rate = {}/s for {} ms, epochs = {epochs}, \
         batch = {}, pipeline depth = {}",
        gl.n,
        gl.load.clients,
        gl.load.rate_tx_per_s,
        gl.load.duration_ms,
        gl.order.batch_max,
        gl.order.pipeline_depth,
    );
    let (obs, metrics) = export_obs(opts, 0);
    let outcome = match run_gateway_load(&gl, obs.clone()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: gateway setup: {e}");
            std::process::exit(2);
        }
    };
    drop(obs);
    let mut m = metrics.lock();
    if let Some(jsonl) = m.1.as_mut() {
        jsonl.flush();
    }
    write_metrics_out(opts, &mut m.0);
    let anomalies = outcome.anomalies();
    println!(
        "{{\"mode\":\"gateway\",\"n\":{},\"clients\":{},\"submitted\":{},\"committed\":{},\
         \"nacked\":{},\"rejected\":{},\"throttled\":{},\"p50_us\":{},\"p99_us\":{},\
         \"ordered_txs\":{},\"epochs\":{epochs},\"anomalies\":{anomalies},\"elapsed_ms\":{}}}",
        gl.n,
        gl.load.clients,
        outcome.load.submitted,
        outcome.load.committed,
        outcome.load.nacked,
        outcome.load.rejected,
        outcome.load.throttled,
        outcome.load.p50_us,
        outcome.load.p99_us,
        outcome.ordered_txs.map_or(-1i64, |t| t as i64),
        outcome.report.elapsed.as_millis(),
    );
    if anomalies > 0 || outcome.load.committed == 0 {
        std::process::exit(1);
    }
}

/// The atomic-broadcast mode: `--epochs E` epochs of batched ACS over
/// real loopback TCP, reporting ordered-log length and wall latency.
fn run_ordering(opts: &Options, chaos: &ChaosConfig) {
    use async_bft::coin::CommonCoin;
    use async_bft::order::{OrderLog, OrderMessage, OrderOptions, OrderProcess};

    if !opts.faults.is_empty() || opts.ones.is_some() {
        eprintln!("error: --fault/--ones apply to consensus mode, not --epochs ordering mode");
        std::process::exit(2);
    }
    let f_max = opts.n.saturating_sub(1) / 3;
    let cfg = match Config::new(opts.n, f_max) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let order = OrderOptions {
        batch_max: opts.batch.max(1),
        pipeline_depth: opts.pipeline.max(1),
        epochs: opts.epochs,
        rbc: opts.rbc,
    };
    println!(
        "ordering mode: n = {}, f = {f_max}, epochs = {}, batch = {}, pipeline depth = {}, \
         rbc = {}",
        opts.n, order.epochs, order.batch_max, order.pipeline_depth, order.rbc
    );

    let mut completed = 0u64;
    let mut agreed = 0u64;
    let mut total = MetricsSink::new();
    for run in 0..opts.runs {
        let seed = opts.seed + run;
        let (obs, metrics) = export_obs(opts, run);
        let mut rt: NetRuntime<OrderMessage, OrderLog> = NetRuntime::new(opts.n)
            .timeout(Duration::from_secs(opts.timeout_secs))
            .observer(obs.clone())
            .driver(opts.driver)
            .chaos(chaos.clone());
        for id in cfg.nodes() {
            let workload: Vec<Vec<u8>> = (0..order.epochs * order.batch_max as u64)
                .map(|i| format!("tx-{}-{i}", id.index()).into_bytes())
                .collect();
            rt.add_process(Box::new(
                OrderProcess::new(cfg, id, order, workload, move |inst| {
                    CommonCoin::new(seed, inst)
                })
                .with_obs(obs.clone()),
            ));
        }
        let report = rt.run();
        drop(obs);
        if report.all_correct_decided() {
            completed += 1;
        }
        if report.agreement_holds() {
            agreed += 1;
        }
        let txs = report.unanimous_output().map_or(0, |log| log.len());
        let mut m = metrics.lock();
        total.merge(&m.0);
        if let Some(jsonl) = m.1.as_mut() {
            jsonl.flush();
        }
        println!(
            "run {run:>3} (seed {seed}): txs ordered = {txs}, elapsed = {:?}, connects = {}, \
             epochs committed = {}, max pipeline occupancy = {}, seq gaps = {}",
            report.elapsed,
            m.0.peer_connects(),
            m.0.epochs_committed(),
            m.0.max_pipeline_occupancy(),
            m.0.frame_sequence_gaps(),
        );
    }
    write_metrics_out(opts, &mut total);
    println!("\nsummary: {}/{} completed, {}/{} agreed", completed, opts.runs, agreed, opts.runs);
    if completed < opts.runs || agreed < opts.runs {
        std::process::exit(1);
    }
}

/// The replicated-state-machine mode: `--kv-workload` runs the KV state
/// machine over the ordered log on real loopback TCP — deterministic
/// apply, RBC-agreed checkpoints with log truncation, and (with
/// `--restart-node`) a crash plus state-transfer recovery of the
/// highest-indexed node.
fn run_smr(opts: &Options, chaos: &ChaosConfig) {
    use async_bft::coin::CommonCoin;
    use async_bft::net::RestartFactory;
    use async_bft::order::OrderOptions;
    use async_bft::smr::{seeded_workload, SmrMessage, SmrOptions, SmrOutput, SmrProcess};
    use async_bft::types::NodeId;

    if !opts.faults.is_empty() || opts.ones.is_some() {
        eprintln!("error: --fault/--ones apply to consensus mode, not --kv-workload mode");
        std::process::exit(2);
    }
    let f_max = opts.n.saturating_sub(1) / 3;
    let cfg = match Config::new(opts.n, f_max) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let epochs = if opts.epochs > 0 { opts.epochs } else { 8 };
    let smr = SmrOptions {
        order: OrderOptions {
            batch_max: opts.batch.max(1),
            pipeline_depth: opts.pipeline.max(1),
            epochs,
            rbc: opts.rbc,
        },
        checkpoint_interval: opts.checkpoint_interval.max(1),
    };
    println!(
        "state-machine mode: n = {}, f = {f_max}, epochs = {epochs}, checkpoint interval = {}, \
         rbc = {}, restart = {}",
        opts.n,
        smr.checkpoint_interval,
        smr.order.rbc,
        if opts.restart_node { "yes" } else { "no" },
    );

    // The victim crashes almost immediately (long before it can output)
    // and restarts only after the survivors have had time to certify
    // the final checkpoint, so recovery must go through erasure-coded
    // peer state transfer rather than live replay.
    let crash_at_ms = 30;
    let restart_at_ms = 1500;
    let mut completed = 0u64;
    let mut agreed = 0u64;
    let mut total = MetricsSink::new();
    for run in 0..opts.runs {
        let seed = opts.seed + run;
        let (obs, metrics) = export_obs(opts, run);
        let mut rt: NetRuntime<SmrMessage, SmrOutput> = NetRuntime::new(opts.n)
            .timeout(Duration::from_secs(opts.timeout_secs))
            .observer(obs.clone())
            .driver(opts.driver)
            .chaos(chaos.clone());
        let count = (epochs * smr.order.batch_max as u64) as usize;
        let make = move |id: NodeId, obs: Obs| {
            SmrProcess::new(cfg, id, smr, seeded_workload(seed, id, count), move |inst| {
                CommonCoin::new(seed, inst)
            })
            .with_obs(obs)
        };
        if opts.restart_node {
            let victim = NodeId::new(opts.n - 1);
            let obs_replacement = obs.clone();
            let factory: RestartFactory<SmrMessage, SmrOutput> =
                Box::new(move || Box::new(make(victim, obs_replacement).recovering(true)));
            rt = rt.restart_node(victim, crash_at_ms, restart_at_ms, factory);
        }
        for id in cfg.nodes() {
            rt.add_process(Box::new(make(id, obs.clone())));
        }
        let report = rt.run();
        drop(obs);
        if report.all_correct_decided() {
            completed += 1;
        }
        if report.agreement_holds() {
            agreed += 1;
        }
        let mut m = metrics.lock();
        total.merge(&m.0);
        if let Some(jsonl) = m.1.as_mut() {
            jsonl.flush();
        }
        match report.unanimous_output() {
            Some(out) => println!(
                "run {run:>3} (seed {seed}): state hash = {:016x}, epochs = {}, keys = {}, \
                 elapsed = {:?}, connects = {}",
                out.state_hash,
                out.epochs,
                out.keys,
                report.elapsed,
                m.0.peer_connects(),
            ),
            None => println!(
                "run {run:>3} (seed {seed}): NO unanimous state, elapsed = {:?}",
                report.elapsed,
            ),
        }
    }
    write_metrics_out(opts, &mut total);
    println!("\nsummary: {}/{} completed, {}/{} agreed", completed, opts.runs, agreed, opts.runs);
    if completed < opts.runs || agreed < opts.runs {
        std::process::exit(1);
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if opts.clients > 0 {
        run_gateway(&opts);
        return;
    }
    if opts.kv_workload {
        let chaos = ChaosConfig {
            seed: opts.seed,
            drop_per_mille: opts.drop_per_mille,
            dup_per_mille: opts.dup_per_mille,
            delay_per_mille: opts.delay_per_mille,
            max_delay_ms: opts.max_delay_ms,
            ..ChaosConfig::default()
        };
        run_smr(&opts, &chaos);
        return;
    }
    if opts.epochs > 0 {
        let chaos = ChaosConfig {
            seed: opts.seed,
            drop_per_mille: opts.drop_per_mille,
            dup_per_mille: opts.dup_per_mille,
            delay_per_mille: opts.delay_per_mille,
            max_delay_ms: opts.max_delay_ms,
            ..ChaosConfig::default()
        };
        run_ordering(&opts, &chaos);
        return;
    }

    let f_max = opts.n.saturating_sub(1) / 3;
    if opts.faults.len() > f_max {
        eprintln!(
            "error: {} faults exceed the resilience bound f = {f_max} for n = {}",
            opts.faults.len(),
            opts.n
        );
        std::process::exit(2);
    }
    let cfg = match Config::new(opts.n, f_max) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let chaos = ChaosConfig {
        seed: opts.seed,
        drop_per_mille: opts.drop_per_mille,
        dup_per_mille: opts.dup_per_mille,
        delay_per_mille: opts.delay_per_mille,
        max_delay_ms: opts.max_delay_ms,
        ..ChaosConfig::default()
    };
    println!(
        "n = {}, f-bound = {f_max}, actual faults = {}, chaos = {}",
        opts.n,
        opts.faults.len(),
        if chaos.enabled() {
            format!(
                "drop {}‰, dup {}‰, delay {}‰ (≤{} ms)",
                chaos.drop_per_mille,
                chaos.dup_per_mille,
                chaos.delay_per_mille,
                chaos.max_delay_ms
            )
        } else {
            "off".to_string()
        }
    );

    let ones = opts.ones.unwrap_or(opts.n / 2);
    let mut decided = 0u64;
    let mut agreed = 0u64;
    let mut total = MetricsSink::new();
    for run in 0..opts.runs {
        let seed = opts.seed + run;
        let (obs, metrics) = export_obs(&opts, run);
        let mut rt: NetRuntime<Wire, Value> = NetRuntime::new(opts.n)
            .timeout(Duration::from_secs(opts.timeout_secs))
            .observer(obs.clone())
            .driver(opts.driver)
            .chaos(chaos.clone());
        // Faults corrupt the lowest-indexed nodes, matching absim.
        for id in cfg.nodes() {
            let input = Value::from_bool(id.index() < ones);
            match opts.faults.get(id.index()) {
                Some(&kind) => {
                    rt.add_faulty_process(make_bracha_adversary(kind, cfg, id, input, seed))
                }
                None => rt.add_process(Box::new(BrachaProcess::new(
                    cfg,
                    id,
                    input,
                    LocalCoin::new(seed, id),
                    BrachaOptions::default(),
                ))),
            }
        }
        let report = rt.run();
        drop(obs);
        if report.all_correct_decided() {
            decided += 1;
        }
        if report.agreement_holds() {
            agreed += 1;
        }
        let mut m = metrics.lock();
        total.merge(&m.0);
        if let Some(jsonl) = m.1.as_mut() {
            jsonl.flush();
        }
        println!(
            "run {run:>3} (seed {seed}): decision = {:?}, elapsed = {:?}, connects = {}, \
             reconnects = {}, backoff retries = {}, frames dropped = {}, decode errors = {}",
            report.unanimous_output(),
            report.elapsed,
            m.0.peer_connects(),
            m.0.peer_reconnects(),
            m.0.backoff_retries(),
            m.0.chaos_frames_dropped(),
            m.0.frame_decode_errors(),
        );
    }

    write_metrics_out(&opts, &mut total);
    println!("\nsummary: {}/{} terminated, {}/{} agreed", decided, opts.runs, agreed, opts.runs);
    if decided < opts.runs || agreed < opts.runs {
        std::process::exit(1);
    }
}
