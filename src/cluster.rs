//! One-stop builder for simulated consensus clusters.

use bft_adversary::{make_bracha_adversary, FaultKind, FavorSenders, LaggardDelay, SplitDelay};
use bft_coin::{BoxedCoin, CommonCoin, LocalCoin};
use bft_obs::Obs;
use bft_sim::{
    BoxedScheduler, FixedDelay, GeometricDelay, MsgClass, PartitionDelay, Report, SimTime,
    UniformDelay, World, WorldConfig,
};
use bft_types::{Config, ConfigError, Value};
use bracha::{classify_wire, BrachaOptions, BrachaProcess, Wire};

/// Which coin scheme the correct nodes use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoinChoice {
    /// Private per-node fair coins — the 1984 protocol.
    Local,
    /// A dealer-model common coin shared by all correct nodes.
    Common,
}

/// Which network schedule (adversary) drives message delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Every message delivered after the same delay (synchronous-like).
    Fixed(u64),
    /// Independent uniform delays in `[min, max]`.
    Uniform {
        /// Minimum delay in ticks.
        min: u64,
        /// Maximum delay in ticks.
        max: u64,
    },
    /// Heavy-tailed geometric delays (per-tick arrival probability
    /// `p_per_mille / 1000`, capped at `max`).
    Geometric {
        /// Per-tick arrival probability in per-mille.
        p_per_mille: u32,
        /// Delay cap in ticks.
        max: u64,
    },
    /// The value-aware anti-coin adversary (see
    /// [`bft_adversary::SplitDelay`]); groups split at `n/2`.
    Split {
        /// Delay for messages feeding a group "its" value.
        fast: u64,
        /// Delay for the contrarian messages.
        slow: u64,
    },
    /// Starve one node (see [`bft_adversary::LaggardDelay`]).
    Laggard {
        /// The starved node index.
        victim: usize,
        /// Delay for everyone else.
        fast: u64,
        /// Delay to/from the victim.
        slow: u64,
    },
    /// Deliver messages *from* nodes `0..favored` fast and everything
    /// else slowly — maximises Byzantine influence on quorum composition
    /// (the T8 ablation's schedule).
    FavorFaulty {
        /// Senders `0..favored` are fast.
        favored: usize,
        /// Delay of favoured traffic.
        fast: u64,
        /// Delay of everyone else's traffic.
        slow: u64,
    },
    /// A temporary network partition between `0..n/2` and the rest,
    /// healing at the given time.
    Partition {
        /// Delay inside each group (and everywhere after healing).
        near: u64,
        /// Cross-partition delay while split.
        far: u64,
        /// Healing time in ticks.
        heal_at: u64,
    },
}

/// Builder for a simulated Bracha-consensus cluster.
///
/// See the [crate-level example](crate) for typical use. Every setting has
/// a sensible default: max resilience `f = ⌊(n−1)/3⌋`, seed 0, all-ones
/// inputs, local coins, uniform 1–20 tick delays, no faults.
#[derive(Debug)]
pub struct Cluster {
    config: Config,
    seed: u64,
    inputs: Vec<Value>,
    coin: CoinChoice,
    schedule: Schedule,
    faults: Vec<(usize, FaultKind)>,
    options: BrachaOptions,
    max_delivered: u64,
    obs: Obs,
}

impl Cluster {
    /// Creates a cluster of `n` nodes tolerating the maximum
    /// `f = ⌊(n−1)/3⌋` faults.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is zero.
    pub fn new(n: usize) -> Result<Self, ConfigError> {
        Ok(Cluster::with_config(Config::max_resilience(n)?))
    }

    /// Creates a cluster with an explicit configuration (use
    /// [`Config::new_unchecked_resilience`] to run beyond the bound for
    /// impossibility experiments).
    pub fn with_config(config: Config) -> Self {
        Cluster {
            config,
            seed: 0,
            inputs: vec![Value::One; config.n()],
            coin: CoinChoice::Local,
            schedule: Schedule::Uniform { min: 1, max: 20 },
            faults: Vec::new(),
            options: BrachaOptions::default(),
            max_delivered: 10_000_000,
            obs: Obs::disabled(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Sets the run seed (drives scheduler and coin randomness).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets every node's input explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n`.
    pub fn inputs(mut self, inputs: Vec<Value>) -> Self {
        assert_eq!(inputs.len(), self.config.n(), "one input per node");
        self.inputs = inputs;
        self
    }

    /// Gives nodes `0..ones` input `1` and the rest input `0` — the
    /// adversarially interesting split configurations.
    pub fn split_inputs(mut self, ones: usize) -> Self {
        self.inputs =
            (0..self.config.n()).map(|i| if i < ones { Value::One } else { Value::Zero }).collect();
        self
    }

    /// Selects the coin scheme.
    pub fn coin(mut self, coin: CoinChoice) -> Self {
        self.coin = coin;
        self
    }

    /// Selects the network schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Makes node `index` Byzantine with the given behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or already faulty.
    pub fn fault(mut self, index: usize, kind: FaultKind) -> Self {
        assert!(index < self.config.n(), "fault index out of range");
        assert!(self.faults.iter().all(|&(i, _)| i != index), "node {index} is already faulty");
        self.faults.push((index, kind));
        self
    }

    /// Makes nodes `0..count` Byzantine, all with the same behaviour.
    pub fn faults(mut self, count: usize, kind: FaultKind) -> Self {
        for i in 0..count {
            self = self.fault(i, kind);
        }
        self
    }

    /// Overrides the protocol options (validation ablation, max rounds…).
    pub fn options(mut self, options: BrachaOptions) -> Self {
        self.options = options;
        self
    }

    /// Caps the number of delivered messages (the non-termination budget).
    pub fn max_delivered(mut self, max: u64) -> Self {
        self.max_delivered = max;
        self
    }

    /// Attaches an observer: the world emits transport events and every
    /// correct node emits protocol events (round/step/quorum/decide) into
    /// its sink. Faulty processes are not instrumented — their behaviour
    /// shows up through the transport and validation events of the
    /// correct nodes.
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    fn scheduler(&self) -> BoxedScheduler<Wire> {
        let n = self.config.n();
        match self.schedule {
            Schedule::Fixed(d) => Box::new(FixedDelay::new(d)),
            Schedule::Uniform { min, max } => Box::new(UniformDelay::new(min, max, self.seed)),
            Schedule::Geometric { p_per_mille, max } => {
                Box::new(GeometricDelay::new(p_per_mille, max, self.seed))
            }
            Schedule::Split { fast, slow } => Box::new(SplitDelay::new(n / 2, fast, slow)),
            Schedule::Laggard { victim, fast, slow } => {
                Box::new(LaggardDelay::new(victim, fast, slow))
            }
            Schedule::FavorFaulty { favored, fast, slow } => {
                Box::new(FavorSenders::new(favored, fast, slow))
            }
            Schedule::Partition { near, far, heal_at } => {
                Box::new(PartitionDelay::new(n / 2, near, far, SimTime::from_ticks(heal_at)))
            }
        }
    }

    /// Assembles the world and runs the simulation to completion.
    pub fn run(self) -> Report<Value> {
        let cfg = self.config;
        let world_config = WorldConfig::new(cfg.n()).max_delivered(self.max_delivered);
        let mut world = World::new(world_config, self.scheduler());
        world.set_classifier(|m: &Wire| {
            let c = classify_wire(m);
            MsgClass { kind: c.kind, bytes: c.bytes }
        });
        world.set_observer(self.obs.clone());
        for id in cfg.nodes() {
            let input = self.inputs[id.index()];
            match self.faults.iter().find(|&&(i, _)| i == id.index()) {
                Some(&(_, kind)) => {
                    world
                        .add_faulty_process(make_bracha_adversary(kind, cfg, id, input, self.seed));
                }
                None => {
                    let coin: BoxedCoin = match self.coin {
                        CoinChoice::Local => Box::new(LocalCoin::new(self.seed, id)),
                        CoinChoice::Common => Box::new(CommonCoin::new(self.seed, 0)),
                    };
                    world.add_process(Box::new(
                        BrachaProcess::new(cfg, id, input, coin, self.options)
                            .with_obs(self.obs.clone()),
                    ));
                }
            }
        }
        world.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_run_to_unanimous_decision() {
        let report = Cluster::new(4).unwrap().run();
        assert_eq!(report.unanimous_output(), Some(Value::One));
        assert_eq!(report.decision_round(), Some(1));
    }

    #[test]
    fn builder_combinations_work() {
        let report = Cluster::new(7)
            .unwrap()
            .seed(3)
            .split_inputs(4)
            .coin(CoinChoice::Common)
            .schedule(Schedule::Split { fast: 1, slow: 10 })
            .fault(0, FaultKind::Mute)
            .fault(1, FaultKind::FlipValue)
            .run();
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
    }

    #[test]
    fn partition_schedule_delays_but_does_not_break() {
        let report = Cluster::new(4)
            .unwrap()
            .seed(8)
            .split_inputs(2)
            .schedule(Schedule::Partition { near: 1, far: 200, heal_at: 400 })
            .run();
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
    }

    #[test]
    fn metrics_are_classified() {
        let report = Cluster::new(4).unwrap().seed(1).run();
        assert!(report.metrics.bytes_sent > 0);
        assert!(report.metrics.by_kind.keys().any(|k| k.starts_with("send/")));
    }

    #[test]
    #[should_panic(expected = "already faulty")]
    fn duplicate_fault_rejected() {
        let _ = Cluster::new(4).unwrap().fault(0, FaultKind::Mute).fault(0, FaultKind::Mute);
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn wrong_input_length_rejected() {
        let _ = Cluster::new(4).unwrap().inputs(vec![Value::One]);
    }
}
