//! `async-bft` — a reproduction of *Asynchronous Byzantine Consensus*
//! (Bracha, PODC 1984) as a production-quality Rust workspace.
//!
//! The workspace implements, from scratch:
//!
//! * [`bft_rbc`] — Bracha's **reliable broadcast** (Send/Echo/Ready), plus
//!   an AVID-style erasure-coded variant for large payloads.
//! * [`bft_ec`] — the dependency-free **Reed–Solomon** codec and Merkle
//!   fragment commitments behind the coded broadcast.
//! * [`bracha`] — the **randomized Byzantine consensus** protocol with its
//!   message-validation discipline, the Ben-Or baseline, and the
//!   ACS/multi-value extensions that make it "the basis of modern async
//!   BFT".
//! * [`bft_sim`] — a deterministic discrete-event **simulator** whose
//!   pluggable schedulers play the asynchronous network adversary.
//! * [`bft_runtime`] — a thread-per-node **actor runtime** running the
//!   same protocol code on real concurrency.
//! * [`bft_net`] — a real **TCP transport**: framed wire codec with
//!   checksum trailer, preshared-key authenticated handshake, full-mesh
//!   peer manager with reconnect/backoff, and deterministic link-level
//!   chaos injection.
//! * [`bft_adversary`] — a zoo of Byzantine behaviours and content-aware
//!   adversarial schedulers.
//! * [`bft_coin`] — local and (dealer-model) common coins.
//! * [`bft_smr`] — a **replicated key-value state machine** over the
//!   ordered log: deterministic apply, RBC-agreed checkpoints with log
//!   truncation, and erasure-coded peer state transfer for crash
//!   recovery.
//! * [`bft_obs`] — zero-cost-when-disabled **observability**: a protocol
//!   event taxonomy with pluggable sinks (metrics aggregation, JSONL
//!   export, online invariant checking).
//!
//! The same sans-io state machines run unmodified on **three execution
//! substrates**, each trading determinism for realism:
//!
//! 1. [`sim`] — deterministic discrete-event simulation: seeded,
//!    replayable, adversarial schedulers (drive it via [`Cluster`] or the
//!    `absim` binary);
//! 2. [`runtime`] — OS threads exchanging messages over in-memory
//!    channels: real concurrency, no wire;
//! 3. [`net`] — OS threads exchanging authenticated framed messages over
//!    loopback TCP sockets, with optional chaos injection (drive it via
//!    the `abnet` binary).
//!
//! This crate ties them together and adds [`Cluster`], a one-stop builder
//! for simulated consensus experiments:
//!
//! ```
//! use async_bft::{Cluster, CoinChoice, FaultKind, Schedule};
//! use async_bft::types::Value;
//!
//! # fn main() -> Result<(), async_bft::types::ConfigError> {
//! let report = Cluster::new(7)?            // n = 7 ⇒ tolerates f = 2
//!     .seed(42)
//!     .split_inputs(3)                     // 3 nodes vote 1, rest 0
//!     .coin(CoinChoice::Local)
//!     .schedule(Schedule::Uniform { min: 1, max: 20 })
//!     .fault(0, FaultKind::FlipValue)      // two Byzantine liars
//!     .fault(1, FaultKind::Seesaw)
//!     .run();
//!
//! assert!(report.all_correct_decided());
//! assert!(report.agreement_holds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod gateway_load;

pub use cluster::{Cluster, CoinChoice, Schedule};
pub use gateway_load::{run_gateway_load, GatewayLoadOptions, GatewayLoadOutcome};

pub use bft_adversary::FaultKind;

/// Re-export of the vocabulary crate.
pub mod types {
    pub use bft_types::*;
}

/// Re-export of the simulator crate.
pub mod sim {
    pub use bft_sim::*;
}

/// Re-export of the reliable-broadcast crate.
pub mod rbc {
    pub use bft_rbc::*;
}

/// Re-export of the erasure-coding crate.
pub mod ec {
    pub use bft_ec::*;
}

/// Re-export of the coin crate.
pub mod coin {
    pub use bft_coin::*;
}

/// Re-export of the consensus crate.
pub mod consensus {
    pub use bracha::*;
}

/// Re-export of the adversary crate.
pub mod adversary {
    pub use bft_adversary::*;
}

/// Re-export of the thread runtime crate.
pub mod runtime {
    pub use bft_runtime::*;
}

/// Re-export of the TCP transport crate.
pub mod net {
    pub use bft_net::*;
}

/// Re-export of the atomic-broadcast (ordering) crate.
pub mod order {
    pub use bft_order::*;
}

/// Re-export of the replicated state machine crate.
pub mod smr {
    pub use bft_smr::*;
}

/// Re-export of the statistics crate.
pub mod stats {
    pub use bft_stats::*;
}

/// Re-export of the observability crate.
pub mod obs {
    pub use bft_obs::*;
}
