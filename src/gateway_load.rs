//! One-stop harness for the **client-gateway** scenario: a reactor
//! cluster of [`GatewayProcess`] nodes fronted by real gateway sockets,
//! driven by the open-loop load generator from `bft_net::gateway`.
//!
//! The flow, end to end:
//!
//! 1. Build an `n`-node [`NetRuntime`] on the reactor driver with one
//!    [`GatewayPipe`] per node.
//! 2. Wrap each node's [`OrderProcess`] in a [`GatewayProcess`] so
//!    client submissions drain into its mempool with per-client
//!    sequencing.
//! 3. Spawn [`run_load`] on a side thread: it waits for the gateway
//!    listeners to come up, then submits at a fixed aggregate rate and
//!    matches commit acks back to submissions.
//! 4. Run the cluster to completion (a fixed epoch horizon) and join
//!    the generator.
//!
//! Used by the `abnet --clients` mode, the `gateway` benchmark section,
//! and the CI smoke job.

use crate::coin::CommonCoin;
use crate::net::{GatewayPipe, LoadGenConfig, LoadGenReport, NetDriver, NetRuntime, SetupError};
use crate::obs::Obs;
use crate::order::gateway::GatewayProcess;
use crate::order::{OrderLog, OrderOptions, OrderProcess};
use crate::runtime::RuntimeReport;
use crate::types::{Config, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for [`run_gateway_load`].
#[derive(Clone, Debug)]
pub struct GatewayLoadOptions {
    /// Cluster size.
    pub n: usize,
    /// Seed for the common coin.
    pub seed: u64,
    /// Ordering-engine configuration (epoch horizon bounds the run).
    pub order: OrderOptions,
    /// Load-generator configuration.
    pub load: LoadGenConfig,
    /// Cluster run timeout (should exceed the load duration plus drain).
    pub timeout: Duration,
}

impl Default for GatewayLoadOptions {
    fn default() -> Self {
        GatewayLoadOptions {
            n: 4,
            seed: 7,
            order: OrderOptions {
                batch_max: 16,
                pipeline_depth: 4,
                epochs: 24,
                ..OrderOptions::default()
            },
            load: LoadGenConfig::default(),
            timeout: Duration::from_secs(60),
        }
    }
}

/// What one gateway-load run produced.
#[derive(Debug)]
pub struct GatewayLoadOutcome {
    /// The cluster's runtime report (unanimity, timeout, poisoning).
    pub report: RuntimeReport<OrderLog>,
    /// The load generator's view (submitted/committed/nacked, latency).
    pub load: LoadGenReport,
    /// Length of the unanimous ordered log, when there is one.
    pub ordered_txs: Option<usize>,
}

impl GatewayLoadOutcome {
    /// Conditions that should never occur in a healthy run: disagreeing
    /// logs, a timed-out cluster, a panicked runtime thread, or
    /// non-retryable client rejections.
    pub fn anomalies(&self) -> u64 {
        let mut count = self.load.rejected;
        if !self.report.agreement_holds() {
            count += 1;
        }
        if self.report.timed_out {
            count += 1;
        }
        if self.report.poisoned {
            count += 1;
        }
        count
    }
}

/// Runs one gateway-load scenario; see the module docs for the flow.
///
/// `obs` observes the cluster (transport + ordering + gateway events);
/// pass [`Obs::disabled`] to run dark.
///
/// # Panics
///
/// Panics when `opts.n` does not admit a valid configuration (`n = 0`).
pub fn run_gateway_load(
    opts: &GatewayLoadOptions,
    obs: Obs,
) -> Result<GatewayLoadOutcome, SetupError> {
    let f_max = opts.n.saturating_sub(1) / 3;
    let cfg = match Config::new(opts.n, f_max) {
        Ok(c) => c,
        Err(e) => panic!("gateway load: config for n = {}: {e}", opts.n),
    };
    let seed = opts.seed;
    let order = opts.order;

    let pipes: Vec<GatewayPipe> = (0..opts.n).map(|_| GatewayPipe::new()).collect();
    let mut rt: NetRuntime<_, OrderLog> = NetRuntime::new(opts.n)
        .timeout(opts.timeout)
        .observer(obs.clone())
        .driver(NetDriver::Reactor);
    for (i, pipe) in pipes.iter().enumerate() {
        rt = rt.gateway(NodeId::new(i), pipe.clone());
    }
    for id in cfg.nodes() {
        let inner =
            OrderProcess::new(cfg, id, order, Vec::new(), move |inst| CommonCoin::new(seed, inst))
                .with_obs(obs.clone());
        let pipe = pipes.get(id.index()).cloned().unwrap_or_default();
        rt.add_process(Box::new(GatewayProcess::new(inner, pipe).with_obs(obs.clone())));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let generator = {
        let pipes = pipes.clone();
        let load = opts.load;
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // The runtime publishes each gateway's address once its
            // listener is bound; wait for all of them (bounded — on a
            // setup error the main thread flips `stop`).
            let mut addrs = Vec::with_capacity(pipes.len());
            for _ in 0..2000 {
                addrs = pipes.iter().filter_map(|p| p.addr()).collect();
                if addrs.len() == pipes.len() || stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            if addrs.len() != pipes.len() {
                return LoadGenReport::default();
            }
            crate::net::run_load(&addrs, &load, &stop)
        })
    };

    let ran = rt.try_run();
    stop.store(true, Ordering::Relaxed);
    let load = generator.join().unwrap_or_default();
    let report = ran?;
    let ordered_txs = report.unanimous_output().map(|log| log.len());
    Ok(GatewayLoadOutcome { report, load, ordered_txs })
}
